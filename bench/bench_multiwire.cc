/**
 * @file
 * MULTI — multi-wire monitoring (paper Section IV-C / future work):
 * "Theoretical analysis suggests that monitoring multiple wires on a
 * bus can exponentially increase authentication accuracy." Fused
 * geometric-mean scores across independently fingerprinted wires
 * drive the impostor distribution down multiplicatively.
 */

#include <cmath>

#include "bench_common.hh"
#include "fingerprint/study.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace divot;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("MULTI", "EER vs number of monitored wires", opt);

    // Stress the environment so the single-wire EER is measurably
    // non-zero and the multi-wire improvement has room to show.
    Table table("Accuracy vs monitored wires (vibration-stressed "
                "campaign)");
    table.setHeader({"wires", "genuine mean", "impostor mean",
                     "impostor max", "EER", "EER(fit)", "d'"});

    for (std::size_t wires : {1u, 2u, 3u, 4u, 6u}) {
        StudyConfig cfg;
        cfg.lines = 4;
        cfg.lineLength = 0.25;
        cfg.wires = wires;
        cfg.enrollReps = 8;
        cfg.genuinePerLine = opt.full ? 256 : 64;
        cfg.impostorPerPair = opt.full ? 64 : 16;
        cfg.environment.vibrationStrain = 1.5e-2;
        const StudyResult res =
            GenuineImpostorStudy(cfg, Rng(opt.seed)).run();
        RunningStats g, im;
        g.addAll(res.genuine);
        im.addAll(res.impostor);
        table.addRow({std::to_string(wires), Table::num(g.mean(), 4),
                      Table::num(im.mean(), 4),
                      Table::num(im.max(), 4),
                      Table::num(res.roc.eer, 6),
                      Table::sci(res.fittedEer, 2),
                      Table::num(res.decidability, 2)});
    }
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\nexpected shape: impostor mean decays roughly "
                "geometrically with wire count\n(geometric-mean "
                "fusion multiplies per-wire impostor scores), driving "
                "EER toward zero.\n");
    return 0;
}
