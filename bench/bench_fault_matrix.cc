/**
 * @file
 * Fault × attack campaign: the robustness story in one table.
 *
 * Every cell pairs one instrument fault (or none) with one physical
 * attack (or none) and runs a full Authenticator lifecycle — enroll,
 * monitor, fault hits, attack staged mid-run. Reported per cell:
 * whether the attack was detected (and how fast), false alarms raised
 * while no attack was present, and availability (fraction of rounds
 * the bus stayed trusted). A second pass with vote-confirmation
 * disabled (confirmWindow = 0) quantifies how much M-of-N voting buys
 * in false-alarm suppression without giving up detections. Finally an
 * EPROM sweep corrupts a saved dual-bank calibration image one byte
 * at a time and checks every single-byte corruption is recovered.
 */

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "auth/enrollment.hh"
#include "fault/campaign.hh"
#include "util/table.hh"

#include "bench_common.hh"

using namespace divot;

namespace {

struct CampaignSummary
{
    unsigned attackCells = 0;
    unsigned detectedCells = 0;
    unsigned falseAlarms = 0;
    unsigned suppressed = 0;
    double worstAvailability = 1.0;
    double meanAvailability = 0.0;
};

CampaignSummary
summarize(const std::vector<FaultCell> &cells)
{
    CampaignSummary s;
    double availSum = 0.0;
    for (const auto &c : cells) {
        if (c.attackStaged) {
            ++s.attackCells;
            if (c.detected)
                ++s.detectedCells;
        }
        s.falseAlarms += c.falseAlarms;
        s.suppressed += c.suppressedAlarms;
        availSum += c.availability;
        if (c.availability < s.worstAvailability)
            s.worstAvailability = c.availability;
    }
    s.meanAvailability = cells.empty() ? 0.0 : availSum / cells.size();
    return s;
}

void
printMatrix(const std::vector<FaultCell> &cells, const char *title,
            bool csv)
{
    Table table(title);
    table.setHeader({"fault", "attack", "detected", "latency",
                     "false-alarms", "suppressed", "unhealthy",
                     "degraded", "quarantine", "avail%", "final"});
    for (const auto &c : cells) {
        table.addRow({c.fault, c.attack,
                      c.attackStaged ? (c.detected ? "yes" : "MISS")
                                     : "-",
                      c.detected ? std::to_string(c.detectionLatency)
                                 : "-",
                      std::to_string(c.falseAlarms),
                      std::to_string(c.suppressedAlarms),
                      std::to_string(c.unhealthyRounds),
                      std::to_string(c.degradedRounds),
                      std::to_string(c.quarantineRounds),
                      Table::num(c.availability * 100.0, 4),
                      authStateName(c.finalState)});
    }
    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::printf("\n");
}

Fingerprint
syntheticFingerprint(Rng rng, const std::string &label)
{
    std::vector<double> raw(48), residual(48);
    for (std::size_t i = 0; i < raw.size(); ++i) {
        raw[i] = rng.uniform(-1e-3, 1e-3);
        residual[i] = rng.uniform(-1.0, 1.0);
    }
    return Fingerprint::fromParts(Waveform(11.16e-12, std::move(raw)),
                                  Waveform(11.16e-12,
                                           std::move(residual)),
                                  label);
}

/** Corrupt every (stride-th) byte of a saved image; count recoveries. */
void
epromSweep(uint64_t seed, std::size_t stride, bool csv)
{
    const std::string path = "bench_fault_matrix_eprom.bin";
    EnrollmentStore store;
    Rng rng(seed);
    store.enroll("dimm0.clk", syntheticFingerprint(rng.fork(1), "clk"));
    store.enroll("dimm0.dq0", syntheticFingerprint(rng.fork(2), "dq0"));
    if (!store.saveToFile(path))
        divot_fatal("cannot write %s", path.c_str());

    // Snapshot the pristine image so each trial corrupts from clean.
    std::vector<char> image;
    {
        std::ifstream in(path, std::ios::binary);
        image.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }

    std::size_t trials = 0, recovered = 0, fellBack = 0, clean = 0;
    for (std::size_t pos = 0; pos < image.size(); pos += stride) {
        std::vector<char> bad = image;
        bad[pos] = static_cast<char>(bad[pos] ^ 0x5A);
        {
            std::ofstream out(path, std::ios::binary |
                                        std::ios::trunc);
            out.write(bad.data(),
                      static_cast<std::streamsize>(bad.size()));
        }
        EnrollmentStore loaded;
        const EpromLoadReport rep = loaded.loadWithReport(path, false);
        ++trials;
        if (rep.ok && loaded.size() == store.size()) {
            ++recovered;
            if (rep.fellBack)
                ++fellBack;
            else
                ++clean;
        }
    }
    std::remove(path.c_str());

    if (csv) {
        std::printf("eprom_sweep,bytes,%zu,trials,%zu,recovered,%zu,"
                    "fellback,%zu\n\n",
                    image.size(), trials, recovered, fellBack);
    } else {
        std::printf("EPROM dual-bank sweep: image %zu bytes, "
                    "%zu single-byte corruptions -> %zu recovered "
                    "(%zu via bank A, %zu via bank-B fallback)%s\n\n",
                    image.size(), trials, recovered, clean, fellBack,
                    recovered == trials ? " [all recovered]"
                                        : " [RECOVERY GAPS]");
    }
    if (recovered != trials)
        divot_fatal("dual-bank EPROM failed to recover %zu of %zu "
                    "single-byte corruptions",
                    trials - recovered, trials);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("FAULT-MATRIX",
                  "fault x attack campaign with self-healing loop",
                  opt);

    FaultCampaignConfig cfg;
    cfg.rounds = opt.full ? 32 : (opt.smoke ? 8 : 16);
    cfg.attackRound = opt.full ? 8 : (opt.smoke ? 3 : 6);
    cfg.enrollReps = opt.full ? 16 : (opt.smoke ? 4 : 8);

    auto faults = FaultCampaign::standardFaults(cfg.attackRound);
    std::vector<CampaignAttack> attacks = {
        CampaignAttack::None, CampaignAttack::MagneticProbe,
        CampaignAttack::WireTap, CampaignAttack::ColdBoot};
    if (opt.smoke) {
        faults.resize(3);  // none, emi-burst, cmp-stuck
        attacks = {CampaignAttack::None, CampaignAttack::MagneticProbe,
                   CampaignAttack::ColdBoot};
    }

    FaultCampaign campaign(cfg, Rng(opt.seed));
    const auto voted = campaign.run(faults, attacks);
    printMatrix(voted, "Voted (M-of-N confirm, default config)",
                opt.csv);

    FaultCampaignConfig base = cfg;
    base.auth.confirmWindow = 0;  // alarm on first threshold trip
    FaultCampaign baseline(base, Rng(opt.seed));
    const auto single = baseline.run(faults, attacks);
    printMatrix(single, "Baseline (single-round alarm, "
                        "confirmWindow=0)", opt.csv);

    const CampaignSummary v = summarize(voted);
    const CampaignSummary s = summarize(single);
    std::printf("voted:    detection %u/%u, false alarms %u "
                "(suppressed %u), availability mean %.1f%% "
                "worst %.1f%%\n",
                v.detectedCells, v.attackCells, v.falseAlarms,
                v.suppressed, v.meanAvailability * 100.0,
                v.worstAvailability * 100.0);
    std::printf("baseline: detection %u/%u, false alarms %u, "
                "availability mean %.1f%% worst %.1f%%\n\n",
                s.detectedCells, s.attackCells, s.falseAlarms,
                s.meanAvailability * 100.0,
                s.worstAvailability * 100.0);

    if (v.detectedCells != v.attackCells)
        divot_fatal("voted campaign missed %u of %u staged attacks",
                    v.attackCells - v.detectedCells, v.attackCells);
    if (v.falseAlarms > s.falseAlarms)
        divot_fatal("voting raised false alarms (%u) above the "
                    "single-round baseline (%u)",
                    v.falseAlarms, s.falseAlarms);

    epromSweep(opt.seed, opt.smoke ? 17 : 1, opt.csv);

    std::printf("OK\n");
    return 0;
}
