/**
 * @file
 * PERF/ROBUSTNESS — fleet-scale persistence: enroll 10^5 channels
 * into the sharded EnrollmentDb and monitor them with bounded-memory
 * lazy hydration (each tick touches only its probe batch; every shard
 * file is read at most once per tick).
 *
 * Gates:
 *  1. capacity — the configured channel count enrolls durably and the
 *     peak resident enrollment footprint stays under the fixed budget;
 *  2. determinism — the fused-verdict digest of a 1-thread run equals
 *     the pooled run bit for bit, with and without an active storage
 *     FaultPlan;
 *  3. zero junk — under a campaign of torn writes, power cuts, bit
 *     rot, and shard truncation, every damaged record either recovers
 *     through a surviving bank or lands in PendingReenroll; no tick
 *     fuses a corrupted fingerprint into the bus verdict;
 *  4. schedule — the reactor's Pipelined instrument schedule
 *     out-utilizes the Barrier schedule on the same fleet while
 *     leaving the verdict digest bit-identical (the schedule is pure
 *     accounting, DESIGN.md §15).
 *
 * Cross-PR tracking: --json appends a {"bench": "megafleet"} record
 * to BENCH_study_throughput.json (the committed perf trajectory;
 * label from DIVOT_BENCH_LABEL, else "local"); --gate compares
 * enroll/probe throughput against the last committed megafleet record
 * and fails below 85%.
 */

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "fault/fault.hh"
#include "fleet/megafleet.hh"
#include "store/io.hh"
#include "util/rng.hh"

namespace divot {
namespace bench {
namespace {

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/** Start every run from an empty database directory. */
void
resetDir(const std::string &dir, unsigned shards)
{
    store::ensureDir(dir);
    for (unsigned s = 0; s < shards; ++s) {
        const std::string shard =
            dir + "/shard-" + std::to_string(s) + ".bin";
        store::removeFile(shard);
        store::removeFile(shard + ".tmp");
    }
    store::removeFile(dir + "/journal.wal");
}

struct RunResult
{
    MegaFleetReport report;
    double enrollSeconds = 0.0;
    double tickSeconds = 0.0;
    uint64_t cleanTicks = 0; //!< ticks whose bus verdict was trusted
    uint64_t junkTicks = 0;  //!< ticks authenticated below the bar or
                             //!< alarmed by an undamaged fleet
};

/** Outcome of a request-service run (the PR10 front-end leg). */
struct ServiceRun
{
    uint64_t digest = 0;       //!< chained response-frame digest
    uint64_t submitted = 0;    //!< requests submitted
    uint64_t responses = 0;    //!< responses emitted (incl. rejects)
    uint64_t busy = 0;         //!< Busy rejections observed
    uint64_t unknown = 0;      //!< Unknown rejections observed
    uint64_t junk = 0;         //!< responses violating the contract
    double seconds = 0.0;      //!< submit+tick+drain wall time
};

/**
 * Drive a deterministic mixed request stream through the MegaFleet
 * front end: per tick a burst of Verifies across the fleet, a
 * QuarantineStatus, a FleetSummary, a periodic Reenroll, an unknown
 * name, and one per-channel flood that must trip the Busy bound. The
 * stream is a pure function of `seed`, so a serial and a pooled run
 * serve byte-identical traffic and must emit bit-identical response
 * digests.
 *
 * A junk response is one that violates the payload contract: a Verify
 * answered Ok whose authenticated flag disagrees with its similarity
 * vs the accept bar, or an Ok Verify on a channel the store had
 * already fenced.
 */
ServiceRun
runService(const MegaFleetConfig &base, const std::string &dir,
           unsigned threads, unsigned lanes, uint64_t ticks,
           uint64_t seed, const FaultInjector *injector)
{
    MegaFleetConfig cfg = base;
    cfg.store.directory = dir;
    cfg.threads = threads;
    cfg.reactorLanes = lanes;
    resetDir(dir, cfg.store.shards);

    MegaFleet fleet(cfg, Rng(seed));
    if (injector != nullptr)
        fleet.attachFaultInjector(injector);
    fleet.enrollAll();

    ServiceRun r;
    uint64_t id = 1;
    Rng stream(seed ^ 0x5EF1CEULL);
    const auto checkDrained = [&](MegaFleet &f) {
        for (const service::ServiceResponse &resp :
             f.drainResponses()) {
            ++r.responses;
            if (resp.status == service::ResponseStatus::Busy)
                ++r.busy;
            if (resp.status == service::ResponseStatus::Unknown)
                ++r.unknown;
            if (resp.kind == service::RequestKind::Verify &&
                resp.status == service::ResponseStatus::Ok) {
                const bool flagged =
                    (resp.flags & service::kResponseAuthenticated)
                    != 0;
                const bool above =
                    resp.similarity >= cfg.similarityThreshold;
                if (flagged != above)
                    ++r.junk;
            }
        }
    };

    const double t0 = now();
    for (uint64_t t = 0; t < ticks; ++t) {
        service::ServiceRequest rq;
        for (int k = 0; k < 8; ++k) {
            rq.id = id++;
            rq.kind = service::RequestKind::Verify;
            rq.channel = MegaFleet::channelId(
                stream.uniformInt(cfg.channels));
            fleet.submit(rq);
        }
        rq.id = id++;
        rq.kind = service::RequestKind::QuarantineStatus;
        rq.channel =
            MegaFleet::channelId(stream.uniformInt(cfg.channels));
        fleet.submit(rq);
        rq.id = id++;
        rq.kind = service::RequestKind::FleetSummary;
        rq.channel.clear();
        fleet.submit(rq);
        if (t % 3 == 1) {
            rq.id = id++;
            rq.kind = service::RequestKind::Reenroll;
            rq.channel =
                MegaFleet::channelId(stream.uniformInt(cfg.channels));
            fleet.submit(rq);
        }
        rq.id = id++;
        rq.kind = service::RequestKind::Verify;
        rq.channel = "not-a-channel";
        fleet.submit(rq);
        if (t == 1) {
            // Per-channel flood: depth + 2 Verifies on one channel in
            // one burst — the overflow must reject Busy, never queue
            // unboundedly.
            for (std::size_t k = 0;
                 k < cfg.requestChannelDepth + 2; ++k) {
                rq.id = id++;
                rq.kind = service::RequestKind::Verify;
                rq.channel = MegaFleet::channelId(0);
                fleet.submit(rq);
            }
        }
        fleet.tick();
        checkDrained(fleet);
    }
    // Parked requests (verifies racing a fence, summaries) answer
    // within a bounded number of extra ticks; anything left after
    // that is a stuck request and counts as junk.
    for (int extra = 0; extra < 64 && fleet.pendingRequests() > 0;
         ++extra) {
        fleet.tick();
        checkDrained(fleet);
    }
    r.seconds = now() - t0;
    r.junk += fleet.pendingRequests();
    r.submitted = fleet.serviceStats().submitted;
    if (r.responses != r.submitted)
        ++r.junk; // every submit must answer exactly once
    r.digest = fleet.responseDigest();
    return r;
}

RunResult
runFleet(const MegaFleetConfig &base, const std::string &dir,
         unsigned threads, unsigned lanes, uint64_t ticks,
         uint64_t seed, const FaultInjector *injector)
{
    MegaFleetConfig cfg = base;
    cfg.store.directory = dir;
    cfg.threads = threads;
    cfg.reactorLanes = lanes;
    resetDir(dir, cfg.store.shards);

    MegaFleet fleet(cfg, Rng(seed));
    if (injector != nullptr)
        fleet.attachFaultInjector(injector);

    RunResult r;
    double t0 = now();
    fleet.enrollAll();
    r.enrollSeconds = now() - t0;

    t0 = now();
    for (uint64_t t = 0; t < ticks; ++t) {
        const MegaFleetVerdict v = fleet.tick();
        if (v.busTrusted)
            ++r.cleanTicks;
        // A corrupted fingerprint that slipped through the CRC banks
        // would crater the fused score (its residual decorrelates):
        // any contributing tick below the accept bar counts as junk.
        if (v.contributingWires > 0 && !v.busAuthenticated)
            ++r.junkTicks;
    }
    r.tickSeconds = now() - t0;
    r.report = fleet.report();
    return r;
}

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    out += buf;
}

std::string
readWholeFile(const char *path)
{
    std::FILE *f = std::fopen(path, "rb");
    if (f == nullptr)
        return {};
    std::string content;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        content.append(buf, got);
    std::fclose(f);
    return content;
}

/** Append `record` to the top-level array in `path` (creating the
 *  file as a one-record array when absent or unparseable). */
void
appendRecord(const char *path, const std::string &record)
{
    const std::string existing = readWholeFile(path);
    std::string out;
    const std::size_t close = existing.find_last_of(']');
    if (close == std::string::npos) {
        out = "[\n" + record + "\n]\n";
    } else {
        std::size_t end = close;
        while (end > 0 &&
               std::isspace(static_cast<unsigned char>(
                   existing[end - 1])))
            --end;
        const bool empty_array = end > 0 && existing[end - 1] == '[';
        out = existing.substr(0, end) +
            (empty_array ? "\n" : ",\n") + record + "\n]\n";
    }
    std::FILE *f = std::fopen(path, "wb");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("appended record to %s\n", path);
}

/**
 * Throughput fields of the last committed megafleet record with the
 * SAME run shape — scale and fleet composition — as this run. A raw
 * "last record" baseline silently compares a quick run against a
 * full one (or a 10^5 fleet against the 10^6 leg) as soon as both
 * live in the shared trajectory file; shape-matching keeps the 85%
 * bar meaningful.
 */
std::map<std::string, double>
lastMegafleetRates(const char *path, const char *scale,
                   const MegaFleetConfig &cfg)
{
    std::vector<std::string> shape = {
        "\"bench\": \"megafleet\"",
        std::string("\"scale\": \"") + scale + "\"",
        "\"channels\": " + std::to_string(cfg.channels) + ",",
        "\"shards\": " + std::to_string(cfg.store.shards) + ",",
        "\"probesPerTick\": " + std::to_string(cfg.probesPerTick) +
            ","};
    const std::string record =
        lastMatchingRecord(readWholeFile(path), shape);
    if (record.empty())
        return {};
    return recordRates(
        record, {"enrollPerSec", "probesPerSec", "requestsPerSec"});
}

} // namespace
} // namespace bench
} // namespace divot

int
main(int argc, char **argv)
{
    using namespace divot;
    using namespace divot::bench;

    const Options opt = parseOptions(argc, argv);

    MegaFleetConfig base;
    uint64_t ticks = 6;
    std::size_t campaignChannels = 20000;
    if (opt.million) {
        // The 10^6 capacity leg: fewer ticks (each tick probes 8192
        // wires), same bounded-memory contract. The pipelined
        // schedule leg is skipped — its accounting story is already
        // proven at the smaller scales and the clean runs dominate
        // the wall clock here.
        base.channels = 1000000;
        base.store.shards = 2048;
        base.probesPerTick = 8192;
        ticks = 2;
        base.residentBudgetBytes = 16u << 20;
    } else if (opt.full) {
        base.channels = 200000;
        base.store.shards = 512;
        base.probesPerTick = 4096;
        ticks = 10;
    } else if (opt.quick || opt.smoke) {
        base.channels = 20000;
        base.store.shards = 128;
        base.probesPerTick = 1024;
        ticks = 4;
        campaignChannels = 8000;
    } else {
        base.channels = 100000;
        base.store.shards = 512;
        base.probesPerTick = 4096;
    }
    base.fingerprintBins = 32;
    base.noiseSigma = 1e-4;
    base.similarityThreshold = 0.35;
    base.tamperThreshold = 1e-6;
    base.tamperWireVotes = 3;
    if (!opt.million)
        base.residentBudgetBytes = 8u << 20;
    base.store.overlayFlushRecords = 64;
    base.store.journalCheckpointBytes = 64u << 20;
    // The PR9 store path: decoded shard images served from the
    // byte-budgeted cache, journal fsyncs group-committed per
    // overlay-flush epoch. Both are pure mechanism — record values,
    // durability points, and the verdict digest are unchanged.
    base.store.shardCacheBytes = 96u << 20;
    base.store.journalGroupCommit = true;
    base.telemetry.enabled = false;

    const char *scale = opt.million ? "million"
        : opt.full                  ? "full"
        : (opt.quick || opt.smoke)  ? "quick"
                                    : "default";
    const unsigned lanesK = base.reactorLanes != 0
        ? base.reactorLanes
        : std::min(base.store.shards == 0 ? 1u : base.store.shards,
                   8u);

    std::printf("MegaFleet persistence bench: %zu channels, "
                "%u shards, %zu probes/tick, %llu ticks, "
                "%u reactor lanes, %.0f MiB shard cache\n",
                base.channels, base.store.shards, base.probesPerTick,
                static_cast<unsigned long long>(ticks), lanesK,
                base.store.shardCacheBytes / 1048576.0);

    const std::string root = "/tmp/divot_megafleet";
    store::ensureDir(root);

    // --- Clean capacity + determinism runs. The serial run pins one
    // lane; the pooled run lets the lane count resolve (min(shards,
    // 8)), so the digest equality below covers BOTH the thread-count
    // and the lane-partition invariance at once. ---------------------
    const RunResult serial =
        runFleet(base, root + "/clean-serial", 1, /*lanes=*/1, ticks,
                 opt.seed, nullptr);
    const RunResult pooled =
        runFleet(base, root + "/clean-pooled", 0, /*lanes=*/0, ticks,
                 opt.seed, nullptr);

    const double enrollPerSec =
        serial.report.enrolled /
        (serial.enrollSeconds > 0 ? serial.enrollSeconds : 1e-9);
    const double probesPerSec =
        serial.report.probes /
        (serial.tickSeconds > 0 ? serial.tickSeconds : 1e-9);

    std::printf("\nclean run (serial): enrolled %llu, "
                "%.0f enroll/s, %.0f probes/s, peak resident "
                "%.2f MiB (budget %.2f MiB)\n",
                static_cast<unsigned long long>(
                    serial.report.enrolled),
                enrollPerSec, probesPerSec,
                serial.report.peakResidentBytes / 1048576.0,
                base.residentBudgetBytes / 1048576.0);

    bool capacity_pass =
        serial.report.enrolled == base.channels &&
        serial.report.peakResidentBytes <= base.residentBudgetBytes &&
        serial.report.pendingReenroll == 0 &&
        serial.junkTicks == 0 &&
        serial.cleanTicks == ticks;
    bool determinism_pass =
        serial.report.verdictDigest == pooled.report.verdictDigest;
    std::printf("capacity gate: %s\n",
                capacity_pass ? "PASS" : "FAIL");
    std::printf("determinism gate (clean, 1 thread/1 lane vs N "
                "threads/%u lanes): %s (digest %016llx)\n",
                lanesK, determinism_pass ? "PASS" : "FAIL",
                static_cast<unsigned long long>(
                    serial.report.verdictDigest));

    // --- Instrument-schedule accounting: the reactor's Pipelined
    // mode must out-utilize the Barrier pool on the same fleet
    // without touching a single verdict bit (the schedule is pure
    // accounting; probe math is identical). --------------------------
    bool schedule_digest_pass = true;
    bool schedule_util_pass = true;
    double pipelinedUtilization = 0.0;
    if (opt.million) {
        std::printf("\ninstrument-schedule leg skipped at million "
                    "scale (proven at the smaller scales)\n");
    } else {
        MegaFleetConfig pipelinedCfg = base;
        pipelinedCfg.schedule = ReactorMode::Pipelined;
        const RunResult pipelined =
            runFleet(pipelinedCfg, root + "/clean-pipelined", 0,
                     /*lanes=*/0, ticks, opt.seed, nullptr);
        pipelinedUtilization = pipelined.report.instrumentUtilization;
        schedule_digest_pass = pipelined.report.verdictDigest ==
            serial.report.verdictDigest;
        schedule_util_pass = pipelined.report.instrumentUtilization >
            serial.report.instrumentUtilization;
        std::printf("\ninstrument pool (%zu iTDRs): utilization "
                    "barrier %.3f, pipelined %.3f\n",
                    base.instruments,
                    serial.report.instrumentUtilization,
                    pipelined.report.instrumentUtilization);
        std::printf("schedule-invariance gate (digest barrier == "
                    "pipelined): %s\n",
                    schedule_digest_pass ? "PASS" : "FAIL");
        std::printf("utilization gate (pipelined > barrier): %s\n",
                    schedule_util_pass ? "PASS" : "FAIL");
    }

    // --- Storage fault campaign: torn write, power cuts at every
    // commit point, bit rot, shard truncation. -----------------------
    MegaFleetConfig campaign = base;
    campaign.channels = campaignChannels;
    FaultPlan plan;
    plan.storageTornWrite(campaignChannels / 8)
        .storageCrash(campaignChannels / 4,
                      StorageCrashPoint::AfterJournal)
        .storageCrash(campaignChannels / 3,
                      StorageCrashPoint::BeforeCommit)
        .storageBitRot(campaignChannels / 2, 1, 12.0)
        .storageTruncation((campaignChannels * 2) / 3, 0.55);
    const FaultInjector injector(plan, Rng(opt.seed ^ 0xFau));

    const RunResult faultSerial =
        runFleet(campaign, root + "/fault-serial", 1, /*lanes=*/1,
                 ticks, opt.seed, &injector);
    const RunResult faultPooled =
        runFleet(campaign, root + "/fault-pooled", 0, /*lanes=*/0,
                 ticks, opt.seed, &injector);

    std::printf("\nfault campaign (%zu channels): enrolled %llu, "
                "%llu crash recoveries, %llu pending-reenroll, "
                "junk ticks %llu\n",
                campaign.channels,
                static_cast<unsigned long long>(
                    faultSerial.report.enrolled),
                static_cast<unsigned long long>(
                    faultSerial.report.crashRecoveries),
                static_cast<unsigned long long>(
                    faultSerial.report.pendingReenroll),
                static_cast<unsigned long long>(
                    faultSerial.junkTicks));

    const bool fault_determinism_pass =
        faultSerial.report.verdictDigest ==
        faultPooled.report.verdictDigest;
    // Zero junk: damaged records must recover through a surviving
    // bank or drop out as PendingReenroll — never score as genuine-
    // looking garbage. Surviving wires keep the bus authenticated.
    const bool junk_pass = faultSerial.junkTicks == 0 &&
        faultPooled.junkTicks == 0;
    const bool recovery_pass =
        faultSerial.report.crashRecoveries >= 2 &&
        faultSerial.report.enrolled +
                faultSerial.report.pendingReenroll ==
            campaign.channels;
    std::printf("determinism gate (faulted, 1 thread/1 lane vs N "
                "threads/K lanes): %s (digest %016llx)\n",
                fault_determinism_pass ? "PASS" : "FAIL",
                static_cast<unsigned long long>(
                    faultSerial.report.verdictDigest));
    std::printf("zero-junk gate: %s\n", junk_pass ? "PASS" : "FAIL");
    std::printf("crash-recovery gate: %s\n",
                recovery_pass ? "PASS" : "FAIL");

    // --- Request-service leg: the same fleet driven through the
    // typed request front end (PR10). A deterministic mixed stream —
    // verifies, status snapshots, summaries, re-enrollments, unknown
    // names, one per-channel flood — must produce bit-identical
    // response digests serial vs pooled, clean AND under the fault
    // campaign, with zero junk responses and every admission bound
    // honored. ------------------------------------------------------
    MegaFleetConfig svcCfg = base;
    svcCfg.channels = campaignChannels;
    const uint64_t svcTicks = ticks + 2;
    const ServiceRun svcSerial =
        runService(svcCfg, root + "/svc-serial", 1, /*lanes=*/1,
                   svcTicks, opt.seed, nullptr);
    const ServiceRun svcPooled =
        runService(svcCfg, root + "/svc-pooled", 0, /*lanes=*/0,
                   svcTicks, opt.seed, nullptr);
    const ServiceRun svcFaultSerial =
        runService(svcCfg, root + "/svc-fault-serial", 1, /*lanes=*/1,
                   svcTicks, opt.seed, &injector);
    const ServiceRun svcFaultPooled =
        runService(svcCfg, root + "/svc-fault-pooled", 0, /*lanes=*/0,
                   svcTicks, opt.seed, &injector);

    const double requestsPerSec = svcSerial.responses /
        (svcSerial.seconds > 0 ? svcSerial.seconds : 1e-9);
    std::printf("\nrequest service (%zu channels): %llu requests, "
                "%llu responses (%llu busy, %llu unknown), "
                "%.0f requests/s\n",
                svcCfg.channels,
                static_cast<unsigned long long>(svcSerial.submitted),
                static_cast<unsigned long long>(svcSerial.responses),
                static_cast<unsigned long long>(svcSerial.busy),
                static_cast<unsigned long long>(svcSerial.unknown),
                requestsPerSec);

    const bool service_determinism_pass =
        svcSerial.digest == svcPooled.digest &&
        svcFaultSerial.digest == svcFaultPooled.digest;
    const bool service_junk_pass = svcSerial.junk == 0 &&
        svcPooled.junk == 0 && svcFaultSerial.junk == 0 &&
        svcFaultPooled.junk == 0;
    // The stream floods one channel past its depth and names a
    // channel the fleet never enrolled — both rejections must appear.
    const bool service_admission_pass =
        svcSerial.busy >= 2 && svcSerial.unknown >= svcTicks;
    std::printf("service determinism gate (digest serial == pooled, "
                "clean + faulted): %s (digest %016llx / %016llx)\n",
                service_determinism_pass ? "PASS" : "FAIL",
                static_cast<unsigned long long>(svcSerial.digest),
                static_cast<unsigned long long>(svcFaultSerial.digest));
    std::printf("service zero-junk gate: %s\n",
                service_junk_pass ? "PASS" : "FAIL");
    std::printf("service admission gate (busy >= 2, unknown >= "
                "%llu): %s\n",
                static_cast<unsigned long long>(svcTicks),
                service_admission_pass ? "PASS" : "FAIL");

    const char *record_path = "BENCH_study_throughput.json";

    bool gate_pass = true;
    if (opt.gate) {
        const std::map<std::string, double> last =
            lastMegafleetRates(record_path, scale, base);
        std::printf("\nperf gate (>= 85%% of last committed "
                    "megafleet record at scale=%s, %zu channels):\n",
                    scale, base.channels);
        if (last.empty()) {
            std::printf("  no committed megafleet record with this "
                        "shape; gate passes vacuously\n");
        } else {
            const struct
            {
                const char *key;
                double value;
            } rows[] = {{"enrollPerSec", enrollPerSec},
                        {"probesPerSec", probesPerSec},
                        {"requestsPerSec", requestsPerSec}};
            for (const auto &row : rows) {
                const auto it = last.find(row.key);
                if (it == last.end())
                    continue;
                const bool ok = row.value >= 0.85 * it->second;
                std::printf("  %-13s %10.0f vs %10.0f  %s\n",
                            row.key, row.value, it->second,
                            ok ? "ok" : "REGRESSED");
                gate_pass = gate_pass && ok;
            }
        }
    }

    if (opt.json) {
        const char *label = std::getenv("DIVOT_BENCH_LABEL");
        std::string r;
        appendf(r, "  {\n");
        appendf(r, "    \"label\": \"%s\",\n",
                label != nullptr && *label != '\0' ? label : "local");
        appendf(r, "    \"bench\": \"megafleet\",\n");
        appendf(r, "    \"seed\": %llu,\n",
                static_cast<unsigned long long>(opt.seed));
        appendf(r, "    \"scale\": \"%s\",\n", scale);
        appendf(r, "    \"channels\": %zu,\n", base.channels);
        appendf(r, "    \"shards\": %u,\n", base.store.shards);
        appendf(r, "    \"probesPerTick\": %zu,\n",
                base.probesPerTick);
        appendf(r, "    \"reactorLanes\": %u,\n", lanesK);
        appendf(r, "    \"shardCacheBytes\": %zu,\n",
                base.store.shardCacheBytes);
        appendf(r, "    \"journalGroupCommit\": %s,\n",
                base.store.journalGroupCommit ? "true" : "false");
        appendf(r, "    \"ticks\": %llu,\n",
                static_cast<unsigned long long>(ticks));
        appendf(r, "    \"enrollSeconds\": %.6f,\n",
                serial.enrollSeconds);
        appendf(r, "    \"enrollPerSec\": %.3f,\n", enrollPerSec);
        appendf(r, "    \"probesPerSec\": %.3f,\n", probesPerSec);
        appendf(r, "    \"peakResidentBytes\": %zu,\n",
                serial.report.peakResidentBytes);
        appendf(r, "    \"residentBudgetBytes\": %zu,\n",
                base.residentBudgetBytes);
        appendf(r, "    \"instruments\": %zu,\n", base.instruments);
        appendf(r, "    \"fleet.instrument.utilization\": "
                "{\"barrier\": %.4f, \"pipelined\": %.4f},\n",
                serial.report.instrumentUtilization,
                pipelinedUtilization);
        appendf(r, "    \"verdictDigest\": \"%016llx\",\n",
                static_cast<unsigned long long>(
                    serial.report.verdictDigest));
        appendf(r, "    \"faultCrashRecoveries\": %llu,\n",
                static_cast<unsigned long long>(
                    faultSerial.report.crashRecoveries));
        appendf(r, "    \"faultPendingReenroll\": %llu,\n",
                static_cast<unsigned long long>(
                    faultSerial.report.pendingReenroll));
        appendf(r, "    \"requestsPerSec\": %.3f,\n", requestsPerSec);
        appendf(r, "    \"serviceRequests\": %llu,\n",
                static_cast<unsigned long long>(svcSerial.submitted));
        appendf(r, "    \"serviceDigest\": \"%016llx\",\n",
                static_cast<unsigned long long>(svcSerial.digest));
        appendf(r, "    \"servicePass\": %s,\n",
                service_determinism_pass && service_junk_pass &&
                        service_admission_pass
                    ? "true" : "false");
        appendf(r, "    \"capacityPass\": %s,\n",
                capacity_pass ? "true" : "false");
        appendf(r, "    \"determinismPass\": %s,\n",
                determinism_pass && fault_determinism_pass
                    ? "true" : "false");
        appendf(r, "    \"zeroJunkPass\": %s,\n",
                junk_pass ? "true" : "false");
        appendf(r, "    \"schedulePass\": %s\n",
                schedule_digest_pass && schedule_util_pass
                    ? "true" : "false");
        appendf(r, "  }");
        appendRecord(record_path, r);
    }

    const bool pass = capacity_pass && determinism_pass &&
        fault_determinism_pass && junk_pass && recovery_pass &&
        schedule_digest_pass && schedule_util_pass &&
        service_determinism_pass && service_junk_pass &&
        service_admission_pass && gate_pass;
    std::printf("\n%s\n", pass ? "ALL GATES PASS" : "GATE FAILURE");
    return pass ? 0 : 1;
}
