/**
 * @file
 * PERF — end-to-end throughput of the genuine/impostor study driver,
 * the workload behind Fig. 7/8: measurements per second for the
 * serial path (threads = 1) versus the thread pool, the batched
 * strobe + trace cache single-thread win against the
 * pre-optimization configuration, and the analytic (exact-binomial)
 * strobe engine against the sampled engine — including a
 * statistical-equivalence gate (EER deltas within tolerance) and a
 * multi-wire analytic run. Also re-checks the determinism contract:
 * parallel runs must reproduce the serial scores bit for bit, for
 * both strobe models.
 *
 * DIVOT_THREADS (or hardware concurrency) sets the parallel worker
 * count; --full runs the paper-scale Fig. 7 population; --quick the
 * smallest meaningful sizes (CI perf smoke).
 *
 * Cross-PR perf tracking: BENCH_study_throughput.json (relative to
 * the working directory — CI runs from the repo root where it is
 * checked in) holds a top-level ARRAY of run records, one per PR.
 * --json APPENDS this run as a new record (label from
 * DIVOT_BENCH_LABEL, else "local"); --gate compares this run's
 * throughput rows against the LAST committed record and fails the
 * bench when any tracked row drops below 85% of it.
 */

#include <cctype>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "fingerprint/study.hh"
#include "itdr/kernels/kernels.hh"
#include "telemetry/telemetry.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace divot {
namespace bench {
namespace {

struct Timed
{
    std::string name;
    StudyConfig cfg;
    StudyResult result;
    double seconds = 0.0;
    std::size_t measurements = 0;
};

std::size_t
measurementCount(const StudyConfig &cfg)
{
    const std::size_t lanes = cfg.lines * cfg.wires;
    return lanes * cfg.enrollReps + lanes * cfg.genuinePerLine +
        lanes * (cfg.lines - 1) * cfg.impostorPerPair;
}

Timed
timedRun(const char *name, const StudyConfig &cfg, uint64_t seed,
         Telemetry *telemetry = nullptr)
{
    Timed out;
    out.name = name;
    out.cfg = cfg;
    out.cfg.telemetry = telemetry;
    out.measurements = measurementCount(cfg);
    GenuineImpostorStudy study(out.cfg, Rng(seed));
    const auto t0 = std::chrono::steady_clock::now();
    out.result = study.run();
    const auto t1 = std::chrono::steady_clock::now();
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    return out;
}

bool
bitIdentical(const StudyResult &a, const StudyResult &b)
{
    if (a.genuine.size() != b.genuine.size() ||
        a.impostor.size() != b.impostor.size() ||
        a.totalBusCycles != b.totalBusCycles)
        return false;
    for (std::size_t i = 0; i < a.genuine.size(); ++i)
        if (a.genuine[i] != b.genuine[i])
            return false;
    for (std::size_t i = 0; i < a.impostor.size(); ++i)
        if (a.impostor[i] != b.impostor[i])
            return false;
    return a.roc.eer == b.roc.eer;
}

double
rate(const Timed &t)
{
    return static_cast<double>(t.measurements) /
        std::max(t.seconds, 1e-12);
}

double
cacheHitRate(const StudyResult &r)
{
    const uint64_t lookups = r.cacheHits + r.cacheMisses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(r.cacheHits) /
            static_cast<double>(lookups);
}

const char *
strobeModelName(StrobeModel model)
{
    return model == StrobeModel::Binomial ? "Binomial" : "Sampled";
}

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    out += buf;
}

std::string
readWholeFile(const char *path)
{
    std::FILE *f = std::fopen(path, "rb");
    if (f == nullptr)
        return {};
    std::string content;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        content.append(buf, got);
    std::fclose(f);
    return content;
}

/**
 * One run record, deliberately timestamp-free so re-running at the
 * same commit produces a reviewable (textually stable apart from the
 * timings) diff. The record carries the resolved dispatch target so
 * the perf trajectory distinguishes AVX2 hosts from scalar ones.
 */
std::string
buildRecord(const Options &opt, unsigned workers,
            const std::vector<const Timed *> &rows, double legacy_rate,
            double eer_delta_serial, double eer_delta_multiwire,
            double eer_tolerance, bool equivalence_pass,
            bool determinism_pass)
{
    const char *label = std::getenv("DIVOT_BENCH_LABEL");
    std::string r;
    appendf(r, "  {\n");
    appendf(r, "    \"label\": \"%s\",\n",
            label != nullptr && *label != '\0' ? label : "local");
    appendf(r, "    \"bench\": \"study_throughput\",\n");
    appendf(r, "    \"seed\": %llu,\n",
            static_cast<unsigned long long>(opt.seed));
    appendf(r, "    \"scale\": \"%s\",\n",
            opt.full ? "full" : opt.quick ? "quick" : "default");
    appendf(r, "    \"workers\": %u,\n", workers);
    appendf(r, "    \"hostSimd\": \"%s\",\n",
            simdTargetName(resolveSimdTarget(SimdTarget::Auto)));
    appendf(r, "    \"engines\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Timed &t = *rows[i];
        appendf(r, "      {\n");
        appendf(r, "        \"name\": \"%s\",\n", t.name.c_str());
        appendf(r, "        \"strobeModel\": \"%s\",\n",
                strobeModelName(t.cfg.itdr.strobeModel));
        appendf(r, "        \"simd\": \"%s\",\n",
                simdTargetName(resolveSimdTarget(t.cfg.itdr.simd)));
        appendf(r, "        \"threads\": %u,\n", t.cfg.threads);
        appendf(r, "        \"wires\": %zu,\n", t.cfg.wires);
        appendf(r, "        \"batchedStrobes\": %s,\n",
                t.cfg.itdr.batchedStrobes ? "true" : "false");
        appendf(r, "        \"traceCacheCapacity\": %zu,\n",
                t.cfg.itdr.traceCacheCapacity);
        appendf(r, "        \"measurements\": %zu,\n", t.measurements);
        appendf(r, "        \"seconds\": %.6f,\n", t.seconds);
        appendf(r, "        \"measPerSec\": %.3f,\n", rate(t));
        appendf(r, "        \"speedupVsLegacy\": %.3f,\n",
                rate(t) / legacy_rate);
        appendf(r, "        \"cacheHitRate\": %.4f,\n",
                cacheHitRate(t.result));
        appendf(r, "        \"eer\": %.6f\n", t.result.roc.eer);
        appendf(r, "      }%s\n", i + 1 < rows.size() ? "," : "");
    }
    appendf(r, "    ],\n");
    appendf(r, "    \"eerDeltaSerial\": %.6f,\n", eer_delta_serial);
    appendf(r, "    \"eerDeltaMultiwire\": %.6f,\n",
            eer_delta_multiwire);
    appendf(r, "    \"eerTolerance\": %.6f,\n", eer_tolerance);
    appendf(r, "    \"equivalencePass\": %s,\n",
            equivalence_pass ? "true" : "false");
    appendf(r, "    \"determinismPass\": %s\n",
            determinism_pass ? "true" : "false");
    appendf(r, "  }");
    return r;
}

/** Append `record` to the top-level array in `path` (creating the
 *  file as a one-record array when absent or unparseable). */
void
appendRecord(const char *path, const std::string &record)
{
    const std::string existing = readWholeFile(path);
    std::string out;
    const std::size_t close = existing.find_last_of(']');
    if (close == std::string::npos) {
        out = "[\n" + record + "\n]\n";
    } else {
        std::size_t end = close;
        while (end > 0 && std::isspace(
                              static_cast<unsigned char>(
                                  existing[end - 1])))
            --end;
        const bool empty_array = end > 0 && existing[end - 1] == '[';
        out = existing.substr(0, end) +
            (empty_array ? "\n" : ",\n") + record + "\n]\n";
    }
    std::FILE *f = std::fopen(path, "wb");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("appended record to %s\n", path);
}

/**
 * Throughput rows of the last committed record of THIS bench at THIS
 * scale — the regression-gate baseline. The trajectory file is
 * shared with other benches (e.g. megafleet) and other scales, so
 * the baseline is the last shape-matched record, not whatever record
 * sits last in the file; the ("name", "measPerSec") scan is bounded
 * to that record's text so a later record of another bench can never
 * contribute rows. Engine names are unique within a record, so no
 * full JSON parse is needed.
 */
std::map<std::string, double>
lastCommittedRates(const char *path, const Options &opt)
{
    const std::vector<std::string> shape = {
        "\"bench\": \"study_throughput\"",
        std::string("\"scale\": \"") +
            (opt.full ? "full" : opt.quick ? "quick" : "default") +
            "\""};
    const std::string record =
        lastMatchingRecord(readWholeFile(path), shape);
    std::map<std::string, double> rates;
    std::size_t pos = 0;
    while (true) {
        pos = record.find("\"name\": \"", pos);
        if (pos == std::string::npos)
            break;
        pos += 9;
        const std::size_t name_end = record.find('"', pos);
        if (name_end == std::string::npos)
            break;
        const std::string name = record.substr(pos, name_end - pos);
        const std::size_t rate_key =
            record.find("\"measPerSec\": ", name_end);
        if (rate_key == std::string::npos)
            break;
        rates[name] =
            std::strtod(record.c_str() + rate_key + 14, nullptr);
        pos = rate_key;
    }
    return rates;
}

int
benchMain(int argc, char **argv)
{
    const Options opt = parseOptions(argc, argv);
    banner("PERF.study_throughput",
           "study driver measurements/second: serial vs pool vs "
           "pre-optimization vs analytic strobe engine",
           opt);

    StudyConfig cfg;
    if (opt.quick) {
        // Smallest sizes at which throughput and EER deltas are still
        // meaningful — the CI perf-smoke scale.
        cfg.lines = 2;
        cfg.enrollReps = 2;
        cfg.genuinePerLine = 8;
        cfg.impostorPerPair = 4;
    } else if (!opt.full) {
        // Enough campaign measurements that steady-state throughput —
        // not one-time instrument setup — dominates the timing.
        cfg.lines = 3;
        cfg.enrollReps = 4;
        cfg.genuinePerLine = 24;
        cfg.impostorPerPair = 6;
    }

    // Pre-optimization reference: serial, scalar strobes, no cache.
    StudyConfig legacy = cfg;
    legacy.threads = 1;
    legacy.itdr.batchedStrobes = false;
    legacy.itdr.traceCacheCapacity = 0;

    StudyConfig serial = cfg;
    serial.threads = 1;

    StudyConfig parallel = cfg;
    parallel.threads = 0;  // DIVOT_THREADS / hardware concurrency
    const unsigned workers = ThreadPool::defaultThreadCount();

    // The analytic strobe engine: identical campaigns, binomial
    // hit-count sampling.
    StudyConfig serial_bin = serial;
    serial_bin.itdr.strobeModel = StrobeModel::Binomial;
    StudyConfig parallel_bin = parallel;
    parallel_bin.itdr.strobeModel = StrobeModel::Binomial;

    // The same analytic campaign pinned to the scalar kernel set: the
    // reference the SIMD speedup is measured against, and the row
    // that keeps the trajectory meaningful on hosts with no vector
    // unit (where it coincides with "serial binomial").
    StudyConfig serial_bin_scalar = serial_bin;
    serial_bin_scalar.itdr.simd = SimdTarget::Scalar;

    // Multi-wire end-to-end: both engines through the fusion path.
    StudyConfig multi = serial;
    multi.wires = 2;
    StudyConfig multi_bin = multi;
    multi_bin.itdr.strobeModel = StrobeModel::Binomial;

    // The serial and pooled sampled runs carry live telemetry: their
    // stable exports must match byte for byte (gate 3), and the
    // serial snapshot is embedded in the --json report.
    Telemetry tel_serial;
    Telemetry tel_parallel;

    const Timed t_legacy =
        timedRun("legacy (scalar, no cache)", legacy, opt.seed);
    const Timed t_serial =
        timedRun("serial sampled", serial, opt.seed, &tel_serial);
    const Timed t_parallel =
        timedRun("pooled sampled", parallel, opt.seed, &tel_parallel);
    const Timed t_serial_bin =
        timedRun("serial binomial", serial_bin, opt.seed);
    const Timed t_serial_bin_scalar = timedRun(
        "serial binomial scalar-kernel", serial_bin_scalar, opt.seed);
    const Timed t_parallel_bin =
        timedRun("pooled binomial", parallel_bin, opt.seed);
    const Timed t_multi =
        timedRun("multiwire(2) sampled", multi, opt.seed);
    const Timed t_multi_bin =
        timedRun("multiwire(2) binomial", multi_bin, opt.seed);

    const std::vector<const Timed *> rows = {
        &t_legacy,     &t_serial,    &t_parallel, &t_serial_bin,
        &t_serial_bin_scalar,
        &t_parallel_bin, &t_multi,   &t_multi_bin};

    Table table("study throughput (" +
                std::to_string(t_serial.measurements) +
                " measurements per single-wire run)");
    table.setHeader({"configuration", "threads", "seconds", "meas/s",
                     "speedup", "EER"});
    for (const Timed *t : rows) {
        table.addRow(
            {t->name,
             std::to_string(t->cfg.threads == 0 ? workers
                                                : t->cfg.threads),
             Table::num(t->seconds, 3), Table::num(rate(*t), 4),
             Table::num(rate(*t) / rate(t_legacy), 3) + "x",
             Table::num(t->result.roc.eer, 4)});
    }
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    // Trace-cache effectiveness: engines sharing per-lane caches must
    // agree; the legacy row runs uncached as the contrast.
    std::printf("\ntrace cache:\n");
    for (const Timed *t : rows) {
        std::printf("  %-24s %llu hits / %llu misses / %llu "
                    "evictions (%.1f%% hit rate)\n",
                    t->name.c_str(),
                    static_cast<unsigned long long>(
                        t->result.cacheHits),
                    static_cast<unsigned long long>(
                        t->result.cacheMisses),
                    static_cast<unsigned long long>(
                        t->result.cacheEvictions),
                    100.0 * cacheHitRate(t->result));
    }

    // Gate 1 — determinism: pooled == serial bit-identically, for
    // both strobe models.
    const bool det_sampled =
        bitIdentical(t_serial.result, t_parallel.result);
    const bool det_binomial =
        bitIdentical(t_serial_bin.result, t_parallel_bin.result);
    const std::string snap_serial = tel_serial.exportJson();
    const bool det_telemetry = snap_serial == tel_parallel.exportJson();
    const bool determinism_pass =
        det_sampled && det_binomial && det_telemetry;
    std::printf("\nparallel == serial (bit-identical scores): "
                "sampled %s, binomial %s\n",
                det_sampled ? "yes" : "NO — DETERMINISM VIOLATION",
                det_binomial ? "yes" : "NO — DETERMINISM VIOLATION");
    std::printf("parallel == serial (byte-identical telemetry "
                "snapshot): %s\n",
                det_telemetry ? "yes" : "NO — DETERMINISM VIOLATION");

    // Gate 2 — statistical equivalence: the analytic engine must
    // land within tolerance of the sampled engine's EER. The
    // tolerance is 0.5 pp plus, at reduced scales, the EER
    // quantization floor of the small score sets.
    const double quantum =
        1.0 / static_cast<double>(t_serial.result.genuine.size()) +
        1.0 / static_cast<double>(t_serial.result.impostor.size());
    const double eer_tolerance =
        opt.full ? 0.005 : std::max(0.005, 2.0 * quantum);
    const double eer_delta_serial = std::fabs(
        t_serial_bin.result.roc.eer - t_serial.result.roc.eer);
    const double eer_delta_multi = std::fabs(
        t_multi_bin.result.roc.eer - t_multi.result.roc.eer);
    const bool equivalence_pass = eer_delta_serial <= eer_tolerance &&
        eer_delta_multi <= eer_tolerance;
    std::printf("binomial vs sampled EER delta: single-wire %.4f, "
                "multiwire %.4f (tolerance %.4f): %s\n",
                eer_delta_serial, eer_delta_multi, eer_tolerance,
                equivalence_pass ? "PASS" : "FAIL");

    std::printf("binomial engine speedup (serial, vs sampled): "
                "%.2fx\n",
                rate(t_serial_bin) / rate(t_serial));
    std::printf("SIMD kernel speedup (serial binomial, vs scalar "
                "kernel): %.2fx\n",
                rate(t_serial_bin) / rate(t_serial_bin_scalar));
    std::printf("binomial engine speedup (multiwire, vs sampled): "
                "%.2fx\n",
                rate(t_multi_bin) / rate(t_multi));
    std::printf("serial vs pooled wall speedup: %.2fx on %u workers\n",
                t_serial.seconds / std::max(t_parallel.seconds, 1e-12),
                workers);

    const char *record_path = "BENCH_study_throughput.json";

    // Gate 3 (--gate) — throughput regression against the last
    // committed trajectory record. Compared BEFORE appending, so the
    // baseline is always the previous PR's record. 15% headroom
    // absorbs host jitter; real regressions (a kernel falling off its
    // vector path) are far larger.
    bool gate_pass = true;
    if (opt.gate) {
        const std::map<std::string, double> prev =
            lastCommittedRates(record_path, opt);
        const std::vector<const Timed *> tracked = {
            &t_serial, &t_serial_bin, &t_serial_bin_scalar};
        std::printf("\nperf gate (>= 85%% of last committed record):\n");
        if (prev.empty()) {
            std::printf("  no committed baseline in %s — skipping\n",
                        record_path);
        }
        for (const Timed *t : tracked) {
            const auto it = prev.find(t->name);
            if (it == prev.end() || it->second <= 0.0)
                continue;
            const double frac = rate(*t) / it->second;
            const bool ok = frac >= 0.85;
            std::printf("  %-32s %6.1f%% of %.1f meas/s: %s\n",
                        t->name.c_str(), 100.0 * frac, it->second,
                        ok ? "PASS" : "FAIL");
            gate_pass = gate_pass && ok;
        }
    }

    if (opt.json) {
        appendRecord(record_path,
                     buildRecord(opt, workers, rows, rate(t_legacy),
                                 eer_delta_serial, eer_delta_multi,
                                 eer_tolerance, equivalence_pass,
                                 determinism_pass));
    }
    return determinism_pass && equivalence_pass && gate_pass ? 0 : 1;
}

} // namespace
} // namespace bench
} // namespace divot

int
main(int argc, char **argv)
{
    return divot::bench::benchMain(argc, argv);
}
