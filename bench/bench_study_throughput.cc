/**
 * @file
 * PERF — end-to-end throughput of the genuine/impostor study driver,
 * the workload behind Fig. 7/8: measurements per second for the
 * serial path (threads = 1) versus the thread pool, plus the batched
 * strobe + trace cache single-thread win against the pre-optimization
 * configuration. Also re-checks the determinism contract: the
 * parallel run must reproduce the serial scores bit for bit.
 *
 * DIVOT_THREADS (or hardware concurrency) sets the parallel worker
 * count; --full runs the paper-scale Fig. 7 population.
 */

#include <chrono>
#include <cstdio>

#include "bench_common.hh"
#include "fingerprint/study.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace divot {
namespace bench {
namespace {

struct Timed
{
    StudyResult result;
    double seconds = 0.0;
    std::size_t measurements = 0;
};

std::size_t
measurementCount(const StudyConfig &cfg)
{
    const std::size_t lanes = cfg.lines * cfg.wires;
    return lanes * cfg.enrollReps + lanes * cfg.genuinePerLine +
        lanes * (cfg.lines - 1) * cfg.impostorPerPair;
}

Timed
timedRun(const StudyConfig &cfg, uint64_t seed)
{
    Timed out;
    out.measurements = measurementCount(cfg);
    GenuineImpostorStudy study(cfg, Rng(seed));
    const auto t0 = std::chrono::steady_clock::now();
    out.result = study.run();
    const auto t1 = std::chrono::steady_clock::now();
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    return out;
}

bool
bitIdentical(const StudyResult &a, const StudyResult &b)
{
    if (a.genuine.size() != b.genuine.size() ||
        a.impostor.size() != b.impostor.size() ||
        a.totalBusCycles != b.totalBusCycles)
        return false;
    for (std::size_t i = 0; i < a.genuine.size(); ++i)
        if (a.genuine[i] != b.genuine[i])
            return false;
    for (std::size_t i = 0; i < a.impostor.size(); ++i)
        if (a.impostor[i] != b.impostor[i])
            return false;
    return a.roc.eer == b.roc.eer;
}

int
benchMain(int argc, char **argv)
{
    const Options opt = parseOptions(argc, argv);
    banner("PERF.study_throughput",
           "study driver measurements/second: serial vs pool vs "
           "pre-optimization",
           opt);

    StudyConfig cfg;
    if (!opt.full) {
        // Enough campaign measurements that steady-state throughput —
        // not one-time instrument setup — dominates the timing.
        cfg.lines = 3;
        cfg.enrollReps = 4;
        cfg.genuinePerLine = 24;
        cfg.impostorPerPair = 6;
    }

    // Pre-optimization reference: serial, scalar strobes, no cache.
    StudyConfig legacy = cfg;
    legacy.threads = 1;
    legacy.itdr.batchedStrobes = false;
    legacy.itdr.traceCacheCapacity = 0;

    StudyConfig serial = cfg;
    serial.threads = 1;

    StudyConfig parallel = cfg;
    parallel.threads = 0;  // DIVOT_THREADS / hardware concurrency
    const unsigned workers = ThreadPool::defaultThreadCount();

    const Timed t_legacy = timedRun(legacy, opt.seed);
    const Timed t_serial = timedRun(serial, opt.seed);
    const Timed t_parallel = timedRun(parallel, opt.seed);

    auto rate = [](const Timed &t) {
        return static_cast<double>(t.measurements) /
            std::max(t.seconds, 1e-12);
    };

    Table table("study throughput (" +
                std::to_string(t_serial.measurements) +
                " measurements per run)");
    table.setHeader({"configuration", "threads", "seconds",
                     "meas/s", "speedup"});
    table.addRow({"legacy (scalar, no cache)", "1",
                  Table::num(t_legacy.seconds, 3),
                  Table::num(rate(t_legacy), 4), "1.00x"});
    table.addRow({"serial engine (batch+cache)", "1",
                  Table::num(t_serial.seconds, 3),
                  Table::num(rate(t_serial), 4),
                  Table::num(rate(t_serial) / rate(t_legacy), 3) + "x"});
    table.addRow({"pooled engine", std::to_string(workers),
                  Table::num(t_parallel.seconds, 3),
                  Table::num(rate(t_parallel), 4),
                  Table::num(rate(t_parallel) / rate(t_legacy), 3) +
                      "x"});
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    // Trace-cache effectiveness: the serial and pooled engines share
    // the same per-lane caches, so their counters must agree; the
    // legacy row runs uncached as the contrast.
    auto cache_line = [](const char *label, const StudyResult &r) {
        const uint64_t lookups = r.cacheHits + r.cacheMisses;
        std::printf("%s: %llu hits / %llu misses / %llu evictions "
                    "(%.1f%% hit rate)\n",
                    label,
                    static_cast<unsigned long long>(r.cacheHits),
                    static_cast<unsigned long long>(r.cacheMisses),
                    static_cast<unsigned long long>(r.cacheEvictions),
                    lookups == 0
                        ? 0.0
                        : 100.0 * static_cast<double>(r.cacheHits) /
                            static_cast<double>(lookups));
    };
    std::printf("\ntrace cache:\n");
    cache_line("  legacy (cache off)", t_legacy.result);
    cache_line("  serial engine     ", t_serial.result);
    cache_line("  pooled engine     ", t_parallel.result);

    const bool identical =
        bitIdentical(t_serial.result, t_parallel.result);
    std::printf("\nparallel == serial (bit-identical scores): %s\n",
                identical ? "yes" : "NO — DETERMINISM VIOLATION");
    std::printf("serial vs pooled wall speedup: %.2fx on %u workers\n",
                t_serial.seconds / std::max(t_parallel.seconds, 1e-12),
                workers);
    return identical ? 0 : 1;
}

} // namespace
} // namespace bench
} // namespace divot

int
main(int argc, char **argv)
{
    return divot::bench::benchMain(argc, argv);
}
