/**
 * @file
 * OVH — hardware and latency overhead (paper Section IV-A):
 * 71 registers / 124 LUTs (~0.8 % of an xczu7ev), ~80 % of registers
 * in counters, shareable blocks amortized across buses, and the
 * 50 us measurement envelope at 156.25 MHz.
 */

#include "bench_common.hh"
#include "itdr/budget.hh"
#include "itdr/resource.hh"
#include "util/table.hh"

using namespace divot;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("OVH", "resource + measurement-latency overhead",
                  opt);

    ItdrConfig cfg;
    const double rt25 = 2.0 * 0.25 / 1.5e8;  // 25 cm round trip
    const MeasurementBudget nominal = predictBudget(cfg, rt25);
    const ResourceEstimate est = estimateResources(cfg, nominal.bins);

    // --- Block-level utilization ---
    Table blocks("iTDR utilization by block (xczu7ev-style estimate)");
    blocks.setHeader({"block", "registers", "LUTs", "shared?"});
    for (const auto &b : est.blocks) {
        blocks.addRow({b.name, std::to_string(b.registers),
                       std::to_string(b.luts),
                       b.shareable ? "yes (per chip)" : "per iTDR"});
    }
    blocks.addRow({"TOTAL", std::to_string(est.totalRegisters),
                   std::to_string(est.totalLuts), ""});
    blocks.print(std::cout);
    std::printf("\npaper: 71 registers / 124 LUTs, ~80%% of registers "
                "in counters\nmodel: %u registers / %u LUTs, %.0f%% in "
                "counters\n\n",
                est.totalRegisters, est.totalLuts,
                est.counterRegisterFraction() * 100.0);

    // --- Sharing: cost of protecting N buses ---
    Table sharing("Scaling to many protected buses (shared PLL / PDM "
                  "/ reconstruction)");
    sharing.setHeader({"buses", "registers", "LUTs", "regs per bus"});
    for (unsigned n : {1u, 2u, 4u, 8u, 16u, 64u}) {
        sharing.addRow({std::to_string(n),
                        std::to_string(est.registersForBuses(n)),
                        std::to_string(est.lutsForBuses(n)),
                        Table::num(static_cast<double>(
                                       est.registersForBuses(n)) / n,
                                   3)});
    }
    sharing.print(std::cout);

    // --- Latency: the 50 us envelope ---
    std::printf("\n");
    Table latency("Measurement latency vs trials per bin "
                  "(25 cm line, clock lane, 156.25 MHz)");
    latency.setHeader({"K (trials/bin)", "bins", "bus cycles",
                       "duration (us)", "fits 50us?"});
    for (unsigned k : {17u, 34u, 85u, 170u, 340u}) {
        ItdrConfig c = cfg;
        c.trialsPerPhase = k;
        const MeasurementBudget b = predictBudget(c, rt25);
        latency.addRow({std::to_string(b.trialsPerBin),
                        std::to_string(b.bins),
                        std::to_string(b.expectedCycles),
                        Table::num(b.expectedDuration * 1e6, 4),
                        b.expectedDuration <= 50e-6 ? "yes" : "no"});
    }
    latency.print(std::cout);

    const unsigned k50 = maxTrialsWithinLatency(cfg, rt25, 50e-6);
    std::printf("\nlargest K within the paper's 50 us envelope: %u "
                "(library default K = %u favors accuracy)\n",
                k50, cfg.trialsPerPhase);

    // Data-lane cost comparison (Section II-E).
    ItdrConfig dl = cfg;
    dl.triggerMode = TriggerMode::DataLane;
    const MeasurementBudget db = predictBudget(dl, rt25);
    std::printf("data-lane trigger (1->0 patterns, rate 1/4): "
                "%.1f us vs %.1f us on the clock lane\n",
                db.expectedDuration * 1e6,
                nominal.expectedDuration * 1e6);
    return 0;
}
