/**
 * @file
 * membus_guard — the Section III scenario end to end: an SDRAM
 * module behind a DIVOT-guarded memory bus serving live traffic while
 * an attacker attempts a cold-boot module swap and, later, attaches a
 * probe.
 *
 * Demonstrates: two-way authentication (CPU side + module side), the
 * auth-gated column access, detection latency within the memory-
 * operation time frame, and zero overhead on benign traffic.
 *
 * Build & run:  ./build/examples/membus_guard
 */

#include <algorithm>
#include <cstdio>

#include "core/divot.hh"

using namespace divot;

int
main()
{
    setLogQuiet(true);

    MemorySystemConfig config;
    config.busLength = 0.08;          // CPU to DIMM
    config.requestsPerKcycle = 40.0;  // live traffic
    config.workload = WorkloadKind::HotCold;

    ProtectedMemorySystem system(config, Rng(42));
    std::printf("protected memory system up: bus %.0f mm, clock "
                "%.2f MHz\n",
                system.bus().length() * 1e3, config.clockHz / 1e6);

    // The victim stores a secret before any attack.
    system.sdram().poke(0xc0ffee, 0x5ec12e7);

    // Phase 1: benign operation.
    system.run(500000);
    MemorySystemReport rep = system.report();
    std::printf("\nphase 1 (benign, 500k cycles): %llu requests "
                "completed, row-hit %.0f%%, %llu monitoring rounds, "
                "0 overhead (stalls=%llu, gate rejections=%llu)\n",
                static_cast<unsigned long long>(rep.completed),
                rep.controller.rowHitRate() * 100.0,
                static_cast<unsigned long long>(rep.monitoringRounds),
                static_cast<unsigned long long>(
                    rep.controller.stalledCycles),
                static_cast<unsigned long long>(rep.gateRejections));

    // Phase 2: the attacker powers the system down and moves the DIMM
    // to a harvesting rig (cold boot). From DIVOT's perspective the
    // CPU now faces a foreign bus+module.
    std::printf("\nphase 2: cold-boot module swap at cycle 600k...\n");
    system.scheduleColdBootSwap(600000);
    system.run(1500000);
    rep = system.report();
    if (!rep.detections.empty()) {
        const DetectionRecord &d = rep.detections.front();
        std::printf("  detected '%s' after %.1f us "
                    "(%llu bus cycles)\n",
                    d.attack.c_str(), d.latencySeconds * 1e6,
                    static_cast<unsigned long long>(d.latencyCycles));
        std::printf("  CPU stalled %llu cycles; device gate rejected "
                    "%llu column accesses\n",
                    static_cast<unsigned long long>(
                        rep.controller.stalledCycles),
                    static_cast<unsigned long long>(
                        rep.gateRejections));
        std::printf("  the secret at 0xc0ffee was never served to "
                    "the foreign requester\n");
    } else {
        std::printf("  !! swap NOT detected\n");
        return 1;
    }

    std::printf("\nCPU-side security log (first entries):\n");
    const auto &events = system.protocol().cpuPolicy().events();
    const std::size_t shown = std::min<std::size_t>(events.size(), 5);
    for (std::size_t i = 0; i < shown; ++i) {
        std::printf("  round %llu: %s (S=%.2f)\n",
                    static_cast<unsigned long long>(events[i].round),
                    reactionActionName(events[i].action),
                    events[i].similarity);
    }
    if (events.size() > shown)
        std::printf("  ... (%zu more)\n", events.size() - shown);
    return 0;
}
