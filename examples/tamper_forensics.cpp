/**
 * @file
 * tamper_forensics — using DIVOT as a forensic instrument: stage
 * each of the paper's attacks against an enrolled 25 cm line, then
 * detect, classify by severity, and *locate* each one from the error
 * function E_xy — including the permanent scar a removed wire-tap
 * leaves behind (Section IV-E).
 *
 * Build & run:  ./build/examples/tamper_forensics
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/divot.hh"

using namespace divot;

namespace {

/** Average a few monitoring measurements into a stable snapshot. */
Fingerprint
snapshot(ITdr &itdr, const TransmissionLine &line,
         const Waveform &nominal, int reps = 16)
{
    std::vector<IipMeasurement> ms;
    for (int i = 0; i < reps; ++i)
        ms.push_back(itdr.measure(line));
    return Fingerprint::enroll(ms, nominal, line.name());
}

} // namespace

int
main()
{
    setLogQuiet(true);

    // Fabricate and enroll the victim line.
    ProcessParams process;
    ManufacturingProcess fab(process, Rng(77));
    auto z = fab.drawImpedanceProfile(0.25, 0.5e-3);
    TransmissionLine line(std::move(z), 0.5e-3, process.velocity,
                          50.0, 50.2, process.lossNeperPerMeter,
                          "victim");

    ItdrConfig itdr_cfg;
    ITdr itdr(itdr_cfg, Rng(78));
    TransmissionLine uniform(std::vector<double>(line.segments(), 50.0),
                             line.segmentLength(), line.velocity(),
                             50.0, 50.0, line.lossNeperPerMeter(),
                             "nominal");
    const Waveform nominal = itdr.idealIip(uniform);
    const Fingerprint enrolled = snapshot(itdr, line, nominal, 32);
    std::printf("enrolled '%s' (%.0f cm)\n\n", line.name().c_str(),
                line.length() * 100.0);

    // The paper's attack gallery.
    struct Case
    {
        const char *name;
        TransmissionLine state;
        double true_pos;  //!< meters; <0 when n/a
    };
    WireTap tap(0.3, 50.0);
    MagneticProbe probe(0.65);
    TrojanChipInsertion trojan(0.45);
    LoadModification coldboot(55.0);
    std::vector<Case> cases;
    cases.push_back({"magnetic probe @ 16 cm", probe.apply(line),
                     0.65 * 0.25});
    cases.push_back({"wire-tap @ 7.5 cm", tap.apply(line),
                     0.3 * 0.25});
    cases.push_back({"wire-tap removed (scar)",
                     tap.applyRemoved(line), 0.3 * 0.25});
    cases.push_back({"Trojan interposer @ 11 cm", trojan.apply(line),
                     0.45 * 0.25});
    cases.push_back({"module swap (cold boot)", coldboot.apply(line),
                     0.25});

    TamperLocalizer localizer(5e-7);
    std::printf("%-28s %-12s %-10s %-10s %s\n", "attack", "peak E_xy",
                "est (cm)", "true (cm)", "verdict");
    std::printf("%s\n", std::string(74, '-').c_str());
    for (const auto &c : cases) {
        const Fingerprint current = snapshot(itdr, c.state, nominal);
        const TamperReport rep =
            localizer.inspect(enrolled, current, line);
        std::printf("%-28s %-12.3e %-10.2f %-10.2f %s\n", c.name,
                    rep.peakError, rep.location * 100.0,
                    c.true_pos * 100.0,
                    rep.detected ? "DETECTED" : "missed");
    }

    // Ambient control: re-measuring the pristine line stays silent.
    const Fingerprint benign = snapshot(itdr, line, nominal);
    const TamperReport amb = localizer.inspect(enrolled, benign, line);
    std::printf("%-28s %-12.3e %-10s %-10s %s\n", "(ambient control)",
                amb.peakError, "-", "-",
                amb.detected ? "FALSE ALARM" : "clean");
    return amb.detected ? 1 : 0;
}
