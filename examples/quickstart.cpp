/**
 * @file
 * Quickstart: protect one bus in ~20 lines.
 *
 *   1. Fabricate a bus (or wrap your own TransmissionLine).
 *   2. Calibrate: the iTDR learns the bus's IIP fingerprint.
 *   3. Monitor: every round authenticates the bus and checks for
 *      tampering, concurrently with (simulated) data transfers.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/divot.hh"

using namespace divot;

int
main()
{
    setLogQuiet(true);

    // 1. A 25 cm memory-bus trace, fabricated with realistic PCB
    //    impedance variation (this is the paper's prototype scale).
    DivotSystemConfig config;
    config.lineLength = 0.25;
    config.name = "demo-bus";
    DivotSystem system(config, Rng(/*seed=*/2020));

    std::printf("fabricated '%s': %.0f cm, %zu segments, round trip "
                "%.2f ns\n",
                system.line().name().c_str(),
                system.line().length() * 100.0,
                system.line().segments(),
                system.line().roundTripDelay() * 1e9);

    // 2. Calibration (installation time): measure and store the
    //    fingerprint.
    system.calibrate();
    std::printf("calibrated in %.1f us of bus time\n\n",
                system.elapsed() * 1e6);

    // 3. Normal monitoring: every round passes.
    std::printf("-- monitoring the pristine bus --\n");
    for (int round = 0; round < 3; ++round) {
        const AuthVerdict v = system.monitorOnce();
        std::printf("round %llu: similarity %.3f -> %s, E_xy peak "
                    "%.2e -> %s\n",
                    static_cast<unsigned long long>(v.round),
                    v.similarity,
                    v.authenticated ? "authenticated" : "MISMATCH",
                    v.peakError,
                    v.tamperAlarm ? "TAMPER ALARM" : "clean");
    }

    // 4. An attacker clips a non-contact EM probe onto the bus...
    std::printf("\n-- attacker attaches a magnetic probe mid-bus --\n");
    MagneticProbe probe(/*position=*/0.5);
    system.stageAttack(probe);
    for (int round = 0; round < 16; ++round) {
        const AuthVerdict v = system.monitorOnce();
        if (v.tamperAlarm) {
            std::printf("round %llu: TAMPER ALARM, E_xy peak %.2e, "
                        "located at %.1f cm (true: %.1f cm)\n",
                        static_cast<unsigned long long>(v.round),
                        v.peakError, v.tamperLocation * 100.0,
                        0.5 * system.line().length() * 100.0);
            break;
        }
        std::printf("round %llu: still clean (averaging window "
                    "filling)\n",
                    static_cast<unsigned long long>(v.round));
    }

    // 5. ...and removes it; monitoring recovers.
    std::printf("\n-- probe removed --\n");
    system.clearAttack();
    AuthVerdict v{};
    for (int round = 0; round < 20; ++round)
        v = system.monitorOnce();
    std::printf("after %d rounds: similarity %.3f, %s\n", 20,
                v.similarity,
                v.tamperAlarm ? "still alarming" : "recovered");
    return v.tamperAlarm ? 1 : 0;
}
