/**
 * @file
 * Fleet demo: protect a 6-wire bus with a shared pool of 3 iTDR
 * instruments behind one ChannelScheduler.
 *
 *   1. Add one BusChannel per wire and calibrate the fleet.
 *   2. Tick the scheduler: each tick probes up to `instruments`
 *      channels in parallel and fuses the per-wire scores into ONE
 *      bus verdict (geometric mean + M-of-N tamper vote).
 *   3. Tap a single wire: the fused alarm trips even though the
 *      other five wires still look healthy, and the risk-weighted
 *      policy starts spending the shared instruments on the suspect
 *      wire.
 *
 * Build & run:  ./build/examples/fleet_demo
 */

#include <cstdio>

#include "core/divot.hh"

using namespace divot;

namespace {

void
printRound(const FleetRound &round)
{
    std::printf("tick %llu: probed [",
                static_cast<unsigned long long>(round.tick));
    for (std::size_t i = 0; i < round.probes.size(); ++i)
        std::printf("%s%zu", i ? " " : "", round.probes[i].channel);
    std::printf("] fused %.3f -> %s%s\n", round.fused.fusedSimilarity,
                round.fused.busAuthenticated ? "authenticated"
                                             : "MISMATCH",
                round.fused.tamperAlarm ? " + TAMPER ALARM" : "");
}

} // namespace

int
main()
{
    setLogQuiet(true);

    // 1. Six wires, three shared instruments, risk-weighted probing.
    FleetConfig config;
    config.instruments = 3;
    config.policy = SchedulerPolicy::RiskWeighted;
    ChannelScheduler fleet(config, Rng(/*seed=*/2020));
    for (std::size_t w = 0; w < 6; ++w) {
        BusChannelConfig channel;
        channel.lineLength = 0.25;
        channel.name = "wire" + std::to_string(w);
        fleet.addChannel(channel);
    }
    fleet.calibrateAll();
    std::printf("fleet: %zu wires, %zu shared iTDRs, %s policy, "
                "tick %.1f us\n\n",
                fleet.channelCount(), config.instruments,
                schedulerPolicyName(config.policy),
                fleet.tickDuration() * 1e6);

    // 2. Healthy monitoring: the pool rotates across the wires and
    //    the fused verdict stays trusted.
    std::printf("-- monitoring the pristine bus --\n");
    for (int t = 0; t < 4; ++t)
        printRound(fleet.tick());

    // 3. An attacker taps ONE wire of the bus...
    std::printf("\n-- attacker solders a tap onto wire 4 --\n");
    fleet.channel(4).stageAttack(WireTap(/*position=*/0.4,
                                         /*stub_ohms=*/50.0));
    FleetRound last{};
    int ticks_to_alarm = 0;
    while (!last.fused.tamperAlarm && ticks_to_alarm < 64) {
        last = fleet.tick();
        ++ticks_to_alarm;
        printRound(last);
    }
    std::printf("\nfused alarm after %d ticks; wire 4 state: %s\n",
                ticks_to_alarm,
                authStateName(fleet.channel(4).state()));
    std::printf("bus trusted: %s (one tapped wire poisons the "
                "geometric mean)\n",
                last.fused.busTrusted ? "yes" : "no");

    // 4. The risk-weighted scheduler has been concentrating probes on
    //    the suspect wire.
    std::printf("\nprobe counts per wire:");
    for (std::size_t w = 0; w < fleet.channelCount(); ++w)
        std::printf(" %llu",
                    static_cast<unsigned long long>(fleet.probeCount(w)));
    std::printf("\n");

    const FleetCacheStats cache = fleet.cacheStats();
    std::printf("trace cache: %llu hits / %llu misses across the "
                "fleet\n",
                static_cast<unsigned long long>(cache.totals.hits),
                static_cast<unsigned long long>(cache.totals.misses));
    return last.fused.tamperAlarm ? 0 : 1;
}
