/**
 * @file
 * fleet_enrollment — manufacturing-line workflow: fingerprint a
 * whole fleet of boards, persist the enrollment database (the EPROM
 * image), reload it, and verify that every board authenticates only
 * as itself — the PUF property at fleet scale. Finishes with a
 * cross-match matrix.
 *
 * Build & run:  ./build/examples/fleet_enrollment
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/divot.hh"

using namespace divot;

int
main()
{
    setLogQuiet(true);

    constexpr std::size_t fleet_size = 5;
    const std::string db_path = "/tmp/divot_fleet_eprom.bin";

    // --- Fabrication: pull boards from one production lot ---
    ProcessParams process;
    ManufacturingProcess fab(process, Rng(2020));
    Rng rng(2021);
    std::vector<TransmissionLine> fleet;
    std::vector<std::unique_ptr<ITdr>> instruments;
    for (std::size_t i = 0; i < fleet_size; ++i) {
        auto z = fab.drawImpedanceProfile(0.25, 0.5e-3);
        fleet.emplace_back(std::move(z), 0.5e-3, process.velocity,
                           50.0, 50.0 + rng.gaussian(0.0, 0.3),
                           process.lossNeperPerMeter,
                           "board" + std::to_string(i));
        instruments.push_back(
            std::make_unique<ITdr>(ItdrConfig{}, rng.fork(100 + i)));
    }

    // --- Enrollment: fingerprint every board, burn the EPROM ---
    TransmissionLine uniform(std::vector<double>(500, 50.0), 0.5e-3,
                             process.velocity, 50.0, 50.0,
                             process.lossNeperPerMeter, "nominal");
    const Waveform nominal = instruments[0]->idealIip(uniform);

    EnrollmentStore store;
    for (std::size_t i = 0; i < fleet_size; ++i) {
        std::vector<IipMeasurement> reps;
        for (int r = 0; r < 16; ++r)
            reps.push_back(instruments[i]->measure(fleet[i]));
        store.enroll(fleet[i].name(),
                     Fingerprint::enroll(reps, nominal,
                                         fleet[i].name()));
    }
    if (!store.saveToFile(db_path)) {
        std::printf("failed to write %s\n", db_path.c_str());
        return 1;
    }
    std::printf("enrolled %zu boards -> %s\n\n", store.size(),
                db_path.c_str());

    // --- Field side: reload the EPROM image and cross-match ---
    EnrollmentStore field;
    if (!field.loadFromFile(db_path)) {
        std::printf("EPROM image failed integrity check!\n");
        return 1;
    }

    std::printf("cross-match similarity matrix (rows: measured board,"
                " cols: claimed identity)\n        ");
    for (std::size_t j = 0; j < fleet_size; ++j)
        std::printf("board%zu  ", j);
    std::printf("\n");

    Matcher matcher(0.35);
    bool all_correct = true;
    for (std::size_t i = 0; i < fleet_size; ++i) {
        const Fingerprint probe = Fingerprint::fromMeasurement(
            instruments[i]->measure(fleet[i]), nominal);
        std::printf("board%zu  ", i);
        for (std::size_t j = 0; j < fleet_size; ++j) {
            const auto claimed = field.lookup(fleet[j].name());
            const double s = similarity(*claimed, probe);
            const bool accepted = matcher.accepts(*claimed, probe);
            std::printf("%.3f%s  ", s, accepted ? "*" : " ");
            if (accepted != (i == j))
                all_correct = false;
        }
        std::printf("\n");
    }
    std::printf("\n('*' = accepted at threshold %.2f)\n",
                matcher.threshold());
    std::printf("fleet identification: %s\n",
                all_correct ? "every board matches only itself"
                            : "MISIDENTIFICATION!");
    std::remove(db_path.c_str());
    return all_correct ? 0 : 1;
}
