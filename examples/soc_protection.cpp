/**
 * @file
 * soc_protection — the paper's scaling story (conclusion / future
 * work): one DIVOT deployment guarding every external link of an
 * SoC — DDR channels, PCIe lanes, an NVMe storage link, and a NIC
 * SerDes — with the PLL / PDM / reconstruction hardware shared by
 * all of them. An attacker then probes the storage link.
 *
 * Build & run:  ./build/examples/soc_protection
 */

#include <cstdio>
#include <map>

#include "core/divot.hh"

using namespace divot;

namespace {

TransmissionLine
fabricate(ManufacturingProcess &fab, Rng &rng, const char *name,
          double length)
{
    auto z = fab.drawImpedanceProfile(length, 0.5e-3);
    return TransmissionLine(std::move(z), 0.5e-3,
                            fab.params().velocity,
                            50.0, 50.0 + rng.gaussian(0.0, 0.3),
                            fab.params().lossNeperPerMeter, name);
}

} // namespace

int
main()
{
    setLogQuiet(true);

    ProcessParams process;
    ManufacturingProcess fab(process, Rng(7));
    Rng rng(8);

    // The chip's external links (lengths typical of each interface).
    struct Link
    {
        const char *name;
        double length;
    };
    const Link links[] = {
        {"ddr0.clk", 0.06}, {"ddr1.clk", 0.07},
        {"pcie0.lane0", 0.12}, {"nvme0.link", 0.15},
        {"nic0.serdes", 0.20},
    };

    SocGuard guard(AuthConfig{}, ItdrConfig{}, Rng(9));
    std::map<std::string, TransmissionLine> pristine;
    for (const Link &link : links) {
        TransmissionLine bus =
            fabricate(fab, rng, link.name, link.length);
        guard.attachChannel(link.name, bus, 8);
        pristine.emplace(link.name, std::move(bus));
        std::printf("attached %-12s (%.0f mm)\n", link.name,
                    link.length * 1e3);
    }

    // Hardware economics of the deployment.
    const ResourceEstimate est = guard.resourceReport();
    std::printf("\nhardware: first iTDR %u regs / %u LUTs; %zu "
                "channels total %u regs / %u LUTs\n"
                "(marginal channel: %u regs — the PLL, PDM generator "
                "and reconstruction are shared)\n\n",
                est.totalRegisters, est.totalLuts,
                guard.channelNames().size(), guard.totalRegisters(),
                guard.totalLuts(),
                guard.totalRegisters() -
                    est.registersForBuses(
                        static_cast<unsigned>(
                            guard.channelNames().size()) - 1));

    // Quiet epoch: the whole chip is trusted.
    std::map<std::string, TransmissionLine> current = pristine;
    SocSecurityState s{};
    for (int round = 0; round < 4; ++round)
        s = guard.monitorAll(current);
    std::printf("quiet epoch: %zu/%zu channels healthy, chip %s\n",
                s.healthy, s.channels,
                s.chipTrusted ? "TRUSTED" : "NOT trusted");

    // An attacker probes the storage link to harvest disk traffic.
    MagneticProbe probe(0.6);
    current.at("nvme0.link") = probe.apply(pristine.at("nvme0.link"));
    std::printf("\nattacker clips an EM probe onto nvme0.link...\n");
    for (int round = 0; round < 16 && s.tampered == 0; ++round)
        s = guard.monitorAll(current);
    const AuthVerdict v =
        guard.monitorChannel("nvme0.link", current.at("nvme0.link"));
    std::printf("chip state: %zu healthy, %zu tampered -> %s\n",
                s.healthy, s.tampered,
                s.chipTrusted ? "trusted (!!)" : "NOT trusted");
    std::printf("nvme0.link alarm: E_xy %.2e at %.1f mm from the "
                "controller (probe truly at %.1f mm)\n",
                v.peakError, v.tamperLocation * 1e3,
                0.6 * 0.15 * 1e3);

    // Every other link keeps authenticating.
    std::printf("\nother links unaffected:\n");
    for (const Link &link : links) {
        if (std::string(link.name) == "nvme0.link")
            continue;
        std::printf("  %-12s %s\n", link.name,
                    guard.channel(link.name).state() ==
                            AuthState::Monitoring
                        ? "healthy"
                        : "NOT healthy");
    }
    return s.chipTrusted ? 1 : 0;
}
