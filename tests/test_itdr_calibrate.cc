/**
 * @file
 * Tests for the comparator noise self-calibration.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "itdr/calibrate.hh"
#include "itdr/itdr.hh"
#include "txline/txline.hh"

namespace divot {
namespace {

TEST(NoiseCalibrator, RecoversSigma)
{
    ComparatorParams p;
    p.noiseSigma = 0.5e-3;
    Comparator comparator(p, Rng(1));
    NoiseCalibrator cal(0.5e-3, 50000);
    const NoiseCalibration result = cal.run(comparator);
    ASSERT_TRUE(result.valid);
    EXPECT_NEAR(result.sigma, 0.5e-3, 0.05e-3);
    EXPECT_NEAR(result.offset, 0.0, 0.05e-3);
}

TEST(NoiseCalibrator, RecoversOffsetToo)
{
    ComparatorParams p;
    p.noiseSigma = 0.5e-3;
    p.inputOffset = 0.2e-3;
    Comparator comparator(p, Rng(2));
    NoiseCalibrator cal(0.5e-3, 50000);
    const NoiseCalibration result = cal.run(comparator);
    ASSERT_TRUE(result.valid);
    EXPECT_NEAR(result.sigma, 0.5e-3, 0.05e-3);
    EXPECT_NEAR(result.offset, 0.2e-3, 0.05e-3);
}

/** Works across a range of true sigmas when V_cal is in range. */
class SigmaSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(SigmaSweep, EstimateWithinTenPercent)
{
    const double sigma = GetParam();
    ComparatorParams p;
    p.noiseSigma = sigma;
    Comparator comparator(p, Rng(42));
    NoiseCalibrator cal(sigma, 100000);  // V_cal = sigma: 1-sigma refs
    const NoiseCalibration result = cal.run(comparator);
    ASSERT_TRUE(result.valid);
    EXPECT_NEAR(result.sigma, sigma, 0.1 * sigma);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SigmaSweep,
                         ::testing::Values(0.2e-3, 0.5e-3, 1e-3, 2e-3));

TEST(NoiseCalibrator, SaturationDetected)
{
    // V_cal 50x sigma: both levels saturate, calibration must refuse.
    ComparatorParams p;
    p.noiseSigma = 0.1e-3;
    Comparator comparator(p, Rng(3));
    NoiseCalibrator cal(5e-3, 5000);
    const NoiseCalibration result = cal.run(comparator);
    EXPECT_FALSE(result.valid);
    EXPECT_DOUBLE_EQ(result.sigma, 0.0);
}

TEST(NoiseCalibrator, Validation)
{
    EXPECT_DEATH(NoiseCalibrator(0.0, 100), "positive");
    EXPECT_DEATH(NoiseCalibrator(1e-3, 0), "at least one");
}

TEST(ItdrSelfCalibration, UsesEstimatedSigmaAndOffset)
{
    ItdrConfig cfg;
    cfg.selfCalibrate = true;
    cfg.comparator.inputOffset = 0.3e-3;
    ITdr itdr(cfg, Rng(9));
    // Effective sigma near truth; offset correction near truth.
    EXPECT_NEAR(itdr.effectiveSigma(), cfg.comparator.noiseSigma,
                0.1 * cfg.comparator.noiseSigma);
    EXPECT_NEAR(itdr.offsetCorrection(), 0.3e-3, 0.05e-3);
}

TEST(ItdrSelfCalibration, OffsetCorrectedMeasurementUnbiased)
{
    // An offset-afflicted comparator without calibration biases the
    // whole IIP by the offset; with self-calibration the bias is
    // removed.
    TransmissionLine line(std::vector<double>(200, 50.0), 0.5e-3,
                          1.5e8, 50.0, 50.0, 0.5, "cal");
    ItdrConfig biased;
    biased.comparator.inputOffset = 0.4e-3;
    ItdrConfig calibrated = biased;
    calibrated.selfCalibrate = true;

    ITdr itdr_biased(biased, Rng(11));
    ITdr itdr_cal(calibrated, Rng(11));
    // Compare each measurement's mean against the physics truth (the
    // matched line still has a small coupler-leak pedestal, so the
    // reference is the ideal IIP, not zero).
    const Waveform ideal = itdr_cal.idealIip(line);
    const IipMeasurement m_biased = itdr_biased.measure(line);
    const IipMeasurement m_cal = itdr_cal.measure(line);
    double mean_ideal = 0.0, mean_biased = 0.0, mean_cal = 0.0;
    for (std::size_t i = 0; i < m_biased.iip.size(); ++i) {
        mean_ideal += ideal[i];
        mean_biased += m_biased.iip[i];
        mean_cal += m_cal.iip[i];
    }
    mean_ideal /= static_cast<double>(ideal.size());
    mean_biased /= static_cast<double>(m_biased.iip.size());
    mean_cal /= static_cast<double>(m_cal.iip.size());
    EXPECT_GT(std::fabs(mean_biased - mean_ideal), 0.3e-3);
    EXPECT_LT(std::fabs(mean_cal - mean_ideal), 0.16e-3);
    EXPECT_LT(std::fabs(mean_cal - mean_ideal),
              0.5 * std::fabs(mean_biased - mean_ideal));
}

} // namespace
} // namespace divot
