/**
 * @file
 * Tests for the probe-edge model: timing, monotonicity, deviation
 * convention, and derivative consistency.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "signal/edge.hh"

namespace divot {
namespace {

TEST(EdgeShape, RisingEndpoints)
{
    EdgeShape e(1.0, 50e-12);
    EXPECT_DOUBLE_EQ(e.valueAt(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(e.valueAt(1.0), 1.0);
    EXPECT_DOUBLE_EQ(e.valueAt(0.0), 0.5);
}

TEST(EdgeShape, FallingMirrorsRising)
{
    EdgeShape r(0.8, 50e-12, EdgeKind::Rising);
    EdgeShape f(0.8, 50e-12, EdgeKind::Falling);
    for (double t = -1e-10; t <= 1e-10; t += 1e-11)
        EXPECT_NEAR(r.valueAt(t) + f.valueAt(t), 0.8, 1e-12);
}

TEST(EdgeShape, MonotoneRising)
{
    EdgeShape e(1.0, 40e-12);
    double prev = -1.0;
    for (double t = -1e-10; t <= 1e-10; t += 1e-12) {
        const double v = e.valueAt(t);
        EXPECT_GE(v, prev - 1e-15);
        prev = v;
    }
}

TEST(EdgeShape, TenNinetyRiseTimeMatchesSpec)
{
    const double rise = 50e-12;
    EdgeShape e(1.0, rise);
    // Find 10 % and 90 % crossings by scanning.
    double t10 = 0.0, t90 = 0.0;
    for (double t = -e.duration(); t <= e.duration(); t += 1e-14) {
        if (t10 == 0.0 && e.valueAt(t) >= 0.1)
            t10 = t;
        if (t90 == 0.0 && e.valueAt(t) >= 0.9)
            t90 = t;
    }
    EXPECT_NEAR(t90 - t10, rise, rise * 0.01);
}

TEST(EdgeShape, DeviationZeroBeforeEdgeBothKinds)
{
    EdgeShape r(1.0, 50e-12, EdgeKind::Rising);
    EdgeShape f(1.0, 50e-12, EdgeKind::Falling);
    EXPECT_DOUBLE_EQ(r.deviationAt(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(f.deviationAt(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(r.deviationAt(1.0), 1.0);
    EXPECT_DOUBLE_EQ(f.deviationAt(1.0), -1.0);
}

TEST(EdgeShape, SlopeIntegratesToAmplitude)
{
    EdgeShape e(0.8, 30e-12);
    const double dt = 1e-14;
    double integral = 0.0;
    for (double t = -e.duration(); t <= e.duration(); t += dt)
        integral += e.slopeAt(t) * dt;
    EXPECT_NEAR(integral, 0.8, 0.8 * 1e-3);
}

TEST(EdgeShape, SlopeZeroOutsideRamp)
{
    EdgeShape e(1.0, 30e-12);
    EXPECT_DOUBLE_EQ(e.slopeAt(-e.duration()), 0.0);
    EXPECT_DOUBLE_EQ(e.slopeAt(e.duration()), 0.0);
    EXPECT_GT(e.slopeAt(0.0), 0.0);
}

TEST(EdgeShape, FallingSlopeNegative)
{
    EdgeShape f(1.0, 30e-12, EdgeKind::Falling);
    EXPECT_LT(f.slopeAt(0.0), 0.0);
}

TEST(EdgeShape, SampledCoversPrePostPadding)
{
    EdgeShape e(1.0, 50e-12);
    const Waveform w = e.sampled(1e-12);
    EXPECT_LT(w.startTime(), -e.duration() * 0.99);
    EXPECT_GT(w.endTime(), e.duration() * 1.9);
    EXPECT_DOUBLE_EQ(w[0], 0.0);
}

TEST(EdgeShape, RejectsNonPositiveRiseTime)
{
    EXPECT_DEATH(EdgeShape(1.0, 0.0), "rise_time");
    EXPECT_DEATH(EdgeShape(1.0, -1e-12), "rise_time");
}

} // namespace
} // namespace divot
