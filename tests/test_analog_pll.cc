/**
 * @file
 * Tests for the phase-stepping PLL behind equivalent-time sampling.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analog/pll.hh"
#include "util/stats.hh"

namespace divot {
namespace {

TEST(Pll, PaperNumbers)
{
    // 156.25 MHz clock, 11.16 ps step: > 80 GSa/s equivalent.
    PllParams p;
    PhaseLockedLoop pll(p, Rng(1));
    EXPECT_NEAR(pll.clockPeriod(), 6.4e-9, 1e-15);
    EXPECT_GT(pll.equivalentSampleRate(), 80e9);
    EXPECT_EQ(pll.stepsPerPeriod(),
              static_cast<unsigned>(std::ceil(6.4e-9 / 11.16e-12)));
}

TEST(Pll, PhaseSteppingAccumulates)
{
    PhaseLockedLoop pll(PllParams{}, Rng(2));
    EXPECT_EQ(pll.phaseIndex(), 0u);
    pll.stepPhase();
    pll.stepPhase();
    EXPECT_EQ(pll.phaseIndex(), 2u);
    EXPECT_NEAR(pll.nominalStrobeTime(0), 2 * 11.16e-12, 1e-18);
    pll.resetPhase();
    EXPECT_EQ(pll.phaseIndex(), 0u);
    EXPECT_DOUBLE_EQ(pll.nominalStrobeTime(0), 0.0);
}

TEST(Pll, StrobeTimeCombinesCycleAndPhase)
{
    PhaseLockedLoop pll(PllParams{}, Rng(3));
    pll.stepPhase();
    const double expected = 5.0 * 6.4e-9 + 11.16e-12;
    EXPECT_NEAR(pll.nominalStrobeTime(5), expected, 1e-18);
}

TEST(Pll, JitterStatistics)
{
    PllParams p;
    p.jitterRms = 2e-12;
    PhaseLockedLoop pll(p, Rng(4));
    RunningStats s;
    for (int i = 0; i < 50000; ++i)
        s.add(pll.strobeTime(0) - pll.nominalStrobeTime(0));
    EXPECT_NEAR(s.mean(), 0.0, 1e-13);
    EXPECT_NEAR(s.stddev(), 2e-12, 1e-13);
}

TEST(Pll, NoJitterIsDeterministic)
{
    PhaseLockedLoop pll(PllParams{}, Rng(5));
    EXPECT_DOUBLE_EQ(pll.strobeTime(3), pll.nominalStrobeTime(3));
}

TEST(Pll, Validation)
{
    PllParams bad;
    bad.clockFrequency = 0.0;
    EXPECT_DEATH(PhaseLockedLoop(bad, Rng(6)), "frequency");
    PllParams bad2;
    bad2.phaseStep = 0.0;
    EXPECT_DEATH(PhaseLockedLoop(bad2, Rng(7)), "phase step");
    PllParams bad3;
    bad3.phaseStep = 1.0;  // longer than the clock period
    EXPECT_DEATH(PhaseLockedLoop(bad3, Rng(8)), "ETS would skip");
}

} // namespace
} // namespace divot
