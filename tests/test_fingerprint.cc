/**
 * @file
 * Tests for fingerprints, similarity (Eq. 4), error function (Eq. 5),
 * enrollment averaging, and the matcher.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fingerprint/fingerprint.hh"
#include "itdr/itdr.hh"
#include "txline/manufacturing.hh"

namespace divot {
namespace {

TransmissionLine
testLine(uint64_t seed)
{
    ProcessParams params;
    ManufacturingProcess fab(params, Rng(seed));
    auto z = fab.drawImpedanceProfile(0.1, 0.5e-3);
    return TransmissionLine(std::move(z), 0.5e-3, params.velocity,
                            50.0, 50.3, params.lossNeperPerMeter, "f");
}

struct Fixture
{
    ItdrConfig cfg;
    ITdr itdr{cfg, Rng(77)};
    Waveform nominal;

    Fixture()
    {
        TransmissionLine uniform(
            std::vector<double>(200, 50.0), 0.5e-3, 1.5e8, 50.0, 50.0,
            0.5, "u");
        nominal = itdr.idealIip(uniform);
    }

    Fingerprint
    fp(const TransmissionLine &line)
    {
        return Fingerprint::fromMeasurement(itdr.measure(line), nominal);
    }
};

TEST(Fingerprint, SelfSimilarityIsOne)
{
    Fixture fx;
    const auto line = testLine(1);
    const Fingerprint a = fx.fp(line);
    EXPECT_NEAR(similarity(a, a), 1.0, 1e-12);
}

TEST(Fingerprint, SimilarityIsSymmetric)
{
    Fixture fx;
    const auto line = testLine(1);
    const Fingerprint a = fx.fp(line);
    const Fingerprint b = fx.fp(line);
    EXPECT_DOUBLE_EQ(similarity(a, b), similarity(b, a));
}

TEST(Fingerprint, SimilarityBoundedInUnitInterval)
{
    Fixture fx;
    for (uint64_t s = 1; s <= 6; ++s) {
        const auto la = testLine(s);
        const auto lb = testLine(s + 10);
        const double sim = similarity(fx.fp(la), fx.fp(lb));
        EXPECT_GE(sim, 0.0);
        EXPECT_LE(sim, 1.0);
    }
}

TEST(Fingerprint, GenuineBeatsImpostor)
{
    Fixture fx;
    const auto la = testLine(2);
    const auto lb = testLine(3);
    const Fingerprint ea = fx.fp(la);
    const double genuine = similarity(ea, fx.fp(la));
    const double impostor = similarity(ea, fx.fp(lb));
    EXPECT_GT(genuine, 0.4);
    EXPECT_LT(impostor, 0.3);
    EXPECT_GT(genuine, impostor + 0.2);
}

TEST(Fingerprint, ErrorFunctionZeroForIdenticalTraces)
{
    Fixture fx;
    const Fingerprint a = fx.fp(testLine(4));
    const Waveform e = errorFunction(a, a);
    EXPECT_DOUBLE_EQ(e.peakAbs(), 0.0);
}

TEST(Fingerprint, ErrorFunctionNonNegative)
{
    Fixture fx;
    const auto line = testLine(5);
    const Fingerprint a = fx.fp(line);
    const Fingerprint b = fx.fp(line);
    const Waveform e = errorFunction(a, b);
    for (std::size_t i = 0; i < e.size(); ++i)
        EXPECT_GE(e[i], 0.0);
}

TEST(Fingerprint, SmoothingLowersNoiseFloor)
{
    Fixture fx;
    const auto line = testLine(6);
    const Fingerprint a = fx.fp(line);
    const Fingerprint b = fx.fp(line);
    const double raw = errorFunction(a, b, 1).peakAbs();
    const double smooth = errorFunction(a, b, 5).peakAbs();
    EXPECT_LT(smooth, raw);
}

TEST(Fingerprint, EnrollmentAveragingImprovesGenuineScore)
{
    Fixture fx;
    const auto line = testLine(7);
    std::vector<IipMeasurement> one{fx.itdr.measure(line)};
    std::vector<IipMeasurement> many;
    for (int i = 0; i < 16; ++i)
        many.push_back(fx.itdr.measure(line));
    const auto e1 = Fingerprint::enroll(one, fx.nominal);
    const auto e16 = Fingerprint::enroll(many, fx.nominal);
    // Score several probes against both enrollments.
    double s1 = 0.0, s16 = 0.0;
    for (int i = 0; i < 8; ++i) {
        const Fingerprint probe = fx.fp(line);
        s1 += similarity(e1, probe);
        s16 += similarity(e16, probe);
    }
    EXPECT_GT(s16, s1);
}

TEST(Fingerprint, PeakErrorMatchesErrorFunctionPeak)
{
    Fixture fx;
    const auto la = testLine(8);
    const Fingerprint a = fx.fp(la);
    const Fingerprint b = fx.fp(la);
    EXPECT_DOUBLE_EQ(peakError(a, b), errorFunction(a, b).peakAbs());
}

TEST(Fingerprint, FromPartsRoundtrip)
{
    Fixture fx;
    const Fingerprint a = fx.fp(testLine(9));
    const Fingerprint b =
        Fingerprint::fromParts(a.raw(), a.residual(), "copy");
    EXPECT_NEAR(similarity(a, b), 1.0, 1e-12);
    EXPECT_EQ(b.label(), "copy");
    EXPECT_TRUE(b.valid());
}

TEST(Fingerprint, InvalidByDefault)
{
    Fingerprint fp;
    EXPECT_FALSE(fp.valid());
}

TEST(Fingerprint, EmptyNominalSkipsSubtraction)
{
    Fixture fx;
    const auto line = testLine(10);
    const IipMeasurement m = fx.itdr.measure(line);
    const Waveform empty;
    const Fingerprint fp = Fingerprint::fromMeasurement(m, empty);
    EXPECT_TRUE(fp.valid());
    EXPECT_EQ(fp.raw().size(), m.iip.size());
}

TEST(Matcher, ThresholdSemantics)
{
    Fixture fx;
    const auto line = testLine(11);
    const Fingerprint e = fx.fp(line);
    const Fingerprint genuine = fx.fp(line);
    const Fingerprint impostor = fx.fp(testLine(12));
    Matcher strict(0.4);
    EXPECT_TRUE(strict.accepts(e, genuine));
    EXPECT_FALSE(strict.accepts(e, impostor));
    EXPECT_DOUBLE_EQ(strict.threshold(), 0.4);
}

TEST(Matcher, ThresholdValidation)
{
    EXPECT_DEATH(Matcher(-0.1), "threshold");
    EXPECT_DEATH(Matcher(1.1), "threshold");
}

TEST(FingerprintDeath, InvalidOperandsPanic)
{
    Fingerprint bad;
    Fixture fx;
    const Fingerprint good = fx.fp(testLine(13));
    EXPECT_DEATH(similarity(bad, good), "invalid");
    EXPECT_DEATH(errorFunction(bad, good), "invalid");
}

TEST(FingerprintDeath, EnrollEmptyPanics)
{
    std::vector<IipMeasurement> none;
    Waveform empty;
    EXPECT_DEATH(Fingerprint::enroll(none, empty), "zero");
}

} // namespace
} // namespace divot
