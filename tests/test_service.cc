/**
 * @file
 * FleetService conformance: bounded admission with explicit
 * Busy/Fenced/Unknown answers, request lifecycles riding the fleet
 * reactor (immediate kinds at arrival, Verify on its channel's next
 * verdict, FleetSummary on fusion), the Verify priority boost, framed
 * stream replay, and serial-vs-pooled bit identity of the response
 * digest and the telemetry export.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fleet/channel_scheduler.hh"
#include "service/fleet_service.hh"
#include "store/enrollment_db.hh"
#include "store/io.hh"

namespace divot {
namespace {

using service::FleetService;
using service::RequestKind;
using service::ResponseStatus;
using service::ServiceRequest;
using service::ServiceResponse;

BusChannelConfig
quickChannel(std::size_t index)
{
    BusChannelConfig cfg;
    cfg.lineLength = 0.1; // keep tests fast
    cfg.enrollReps = 8;
    cfg.name = "wire" + std::to_string(index);
    return cfg;
}

std::string
freshDbDir(const char *name)
{
    const std::string dir = std::string(::testing::TempDir()) + name;
    store::ensureDir(dir);
    for (unsigned s = 0; s < 8; ++s) {
        const std::string shard =
            dir + "/shard-" + std::to_string(s) + ".bin";
        store::removeFile(shard);
        store::removeFile(shard + ".tmp");
    }
    store::removeFile(dir + "/journal.wal");
    return dir;
}

store::EnrollmentDbConfig
dbConfig(const std::string &dir)
{
    store::EnrollmentDbConfig cfg;
    cfg.directory = dir;
    cfg.shards = 4;
    cfg.overlayFlushRecords = 2;
    return cfg;
}

ChannelScheduler
makeFleet(std::size_t channels, std::size_t instruments,
          unsigned threads = 1, uint64_t seed = 42)
{
    FleetConfig cfg;
    cfg.instruments = instruments;
    cfg.policy = SchedulerPolicy::RiskWeighted;
    cfg.threads = threads;
    ChannelScheduler fleet(cfg, Rng(seed));
    for (std::size_t c = 0; c < channels; ++c)
        fleet.addChannel(quickChannel(c));
    fleet.calibrateAll();
    return fleet;
}

ServiceRequest
makeRequest(uint64_t id, RequestKind kind, const std::string &channel)
{
    ServiceRequest rq;
    rq.id = id;
    rq.kind = kind;
    rq.channel = channel;
    return rq;
}

TEST(FleetService, UnknownChannelRejectsImmediately)
{
    ChannelScheduler fleet = makeFleet(2, 1);
    FleetService svc(fleet);
    EXPECT_FALSE(svc.submit(
        makeRequest(1, RequestKind::Verify, "no-such-wire")));
    const std::vector<ServiceResponse> got = svc.drainResponses();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].status, ResponseStatus::Unknown);
    EXPECT_EQ(got[0].id, 1u);
    EXPECT_EQ(svc.stats().rejectedUnknown, 1u);
    EXPECT_EQ(svc.pendingRequests(), 0u);
    EXPECT_EQ(fleet.telemetry().registry().counterValue(
                  "service.responses.unknown"),
              1u);
}

TEST(FleetService, PerChannelAndGlobalQueueBoundsRejectBusy)
{
    FleetConfig cfg;
    cfg.instruments = 1;
    cfg.policy = SchedulerPolicy::RiskWeighted;
    cfg.threads = 1;
    cfg.requestChannelDepth = 2;
    cfg.requestQueueDepth = 5;
    ChannelScheduler fleet(cfg, Rng(42));
    for (std::size_t c = 0; c < 4; ++c)
        fleet.addChannel(quickChannel(c));
    fleet.calibrateAll();
    FleetService svc(fleet);

    // Per-channel: depth 2 on wire0 — the third submit must bounce.
    EXPECT_TRUE(svc.submit(makeRequest(1, RequestKind::Verify,
                                       "wire0")));
    EXPECT_TRUE(svc.submit(makeRequest(2, RequestKind::Verify,
                                       "wire0")));
    EXPECT_FALSE(svc.submit(makeRequest(3, RequestKind::Verify,
                                        "wire0")));
    // Global: queue depth 5 across channels.
    EXPECT_TRUE(svc.submit(makeRequest(4, RequestKind::Verify,
                                       "wire1")));
    EXPECT_TRUE(svc.submit(makeRequest(5, RequestKind::Verify,
                                       "wire2")));
    EXPECT_TRUE(svc.submit(makeRequest(6, RequestKind::Verify,
                                       "wire3")));
    EXPECT_FALSE(svc.submit(
        makeRequest(7, RequestKind::FleetSummary, "")));

    const std::vector<ServiceResponse> got = svc.drainResponses();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].status, ResponseStatus::Busy);
    EXPECT_EQ(got[0].id, 3u);
    EXPECT_EQ(got[1].status, ResponseStatus::Busy);
    EXPECT_EQ(got[1].id, 7u);
    EXPECT_EQ(svc.stats().rejectedBusy, 2u);
    EXPECT_EQ(svc.pendingRequests(), 5u);

    // The parked requests all answer once ticks flow again.
    for (int t = 0; t < 6 && svc.pendingRequests() > 0; ++t)
        svc.tick();
    EXPECT_EQ(svc.pendingRequests(), 0u);
    EXPECT_EQ(svc.stats().responses, svc.stats().submitted);
}

TEST(FleetService, VerifyBoostWinsTheNextInstrumentSlot)
{
    // 4 wires, 1 instrument: rotation alone would take 4 ticks to
    // reach wire3; the request boost must put it in the very next
    // probe batch.
    ChannelScheduler fleet = makeFleet(4, 1);
    FleetService svc(fleet);
    ASSERT_TRUE(svc.submit(makeRequest(9, RequestKind::Verify,
                                       "wire3")));
    const FleetRound round = svc.tick();
    ASSERT_FALSE(round.probes.empty());
    EXPECT_EQ(round.probes[0].channel, 3u);

    const std::vector<ServiceResponse> got = svc.drainResponses();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].status, ResponseStatus::Ok);
    EXPECT_EQ(got[0].similarity, round.probes[0].verdict.similarity);
    EXPECT_NE(got[0].flags & service::kResponseAuthenticated, 0u);

    // The boost is consumed by the observed verdict: the next round
    // returns to normal staleness ordering (wire3 is now the
    // freshest, so it is NOT re-probed first).
    const FleetRound next = svc.tick();
    ASSERT_FALSE(next.probes.empty());
    EXPECT_NE(next.probes[0].channel, 3u);
}

TEST(FleetService, QuarantineStatusAndSummaryAnswerFromTheTick)
{
    ChannelScheduler fleet = makeFleet(2, 2);
    FleetService svc(fleet);
    ASSERT_TRUE(svc.submit(
        makeRequest(1, RequestKind::QuarantineStatus, "wire0")));
    ASSERT_TRUE(svc.submit(
        makeRequest(2, RequestKind::FleetSummary, "")));
    const FleetRound round = svc.tick();
    const std::vector<ServiceResponse> got = svc.drainResponses();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].kind, RequestKind::QuarantineStatus);
    EXPECT_EQ(got[0].status, ResponseStatus::Ok);
    EXPECT_EQ(got[0].state,
              static_cast<uint64_t>(AuthState::Monitoring));
    EXPECT_EQ(got[1].kind, RequestKind::FleetSummary);
    EXPECT_EQ(got[1].status, ResponseStatus::Ok);
    EXPECT_EQ(got[1].similarity, round.fused.fusedSimilarity);
    EXPECT_EQ(got[1].channels, round.fused.channels);
}

TEST(FleetService, FencedChannelAnswersFencedNotJunk)
{
    // Store-backed fleet; wire1's durable record vanishes while its
    // enrollment is evicted, so the next selection fences it. Every
    // request against the fenced wire must say Fenced — never an
    // authenticated verdict against a missing enrollment.
    ChannelScheduler fleet = makeFleet(2, 1);
    const std::string dir = freshDbDir("svc_fenced");
    store::EnrollmentDb db(dbConfig(dir));
    ASSERT_TRUE(db.open());
    fleet.attachStore(&db, 1); // evict everything unpinned
    FleetService svc(fleet);

    svc.tick();
    ASSERT_TRUE(db.erase("wire1"));
    // A Verify parked on wire1 races the fence: hydration fails, the
    // demotion verdict answers it as Fenced.
    ASSERT_TRUE(svc.submit(makeRequest(1, RequestKind::Verify,
                                       "wire1")));
    svc.tick();
    ASSERT_EQ(fleet.channel(1).state(), AuthState::PendingReenroll);
    std::vector<ServiceResponse> got = svc.drainResponses();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].status, ResponseStatus::Fenced);
    EXPECT_EQ(got[0].state,
              static_cast<uint64_t>(AuthState::PendingReenroll));
    EXPECT_EQ(got[0].flags & service::kResponseAuthenticated, 0u);

    // Verify against an already-fenced wire answers Fenced at arrival
    // (no instrument burned); QuarantineStatus reports the fence; a
    // Reenroll lifts it and the wire serves verifies again.
    ASSERT_TRUE(svc.submit(makeRequest(2, RequestKind::Verify,
                                       "wire1")));
    ASSERT_TRUE(svc.submit(
        makeRequest(3, RequestKind::QuarantineStatus, "wire1")));
    svc.tick();
    got = svc.drainResponses();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].status, ResponseStatus::Fenced);
    EXPECT_EQ(got[1].status, ResponseStatus::Ok);
    EXPECT_EQ(got[1].state,
              static_cast<uint64_t>(AuthState::PendingReenroll));

    ASSERT_TRUE(svc.submit(makeRequest(4, RequestKind::Reenroll,
                                       "wire1")));
    svc.tick();
    got = svc.drainResponses();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].status, ResponseStatus::Ok);
    EXPECT_GT(got[0].generation, 0u);
    EXPECT_NE(fleet.channel(1).state(), AuthState::PendingReenroll);

    ASSERT_TRUE(svc.submit(makeRequest(5, RequestKind::Verify,
                                       "wire1")));
    svc.tick();
    got = svc.drainResponses();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].status, ResponseStatus::Ok);
}

TEST(FleetService, EnrollBumpsTheDurableGeneration)
{
    ChannelScheduler fleet = makeFleet(2, 1);
    const std::string dir = freshDbDir("svc_enroll");
    store::EnrollmentDb db(dbConfig(dir));
    ASSERT_TRUE(db.open());
    fleet.attachStore(&db, fleet.channel(0).enrollmentBytes() * 4);
    FleetService svc(fleet);

    ASSERT_TRUE(svc.submit(makeRequest(1, RequestKind::Enroll,
                                       "wire0")));
    svc.tick();
    std::vector<ServiceResponse> got = svc.drainResponses();
    ASSERT_EQ(got.size(), 1u);
    ASSERT_EQ(got[0].status, ResponseStatus::Ok);
    const uint64_t first = got[0].generation;
    EXPECT_GT(first, 0u);

    ASSERT_TRUE(svc.submit(makeRequest(2, RequestKind::Enroll,
                                       "wire0")));
    svc.tick();
    got = svc.drainResponses();
    ASSERT_EQ(got.size(), 1u);
    ASSERT_EQ(got[0].status, ResponseStatus::Ok);
    EXPECT_EQ(got[0].generation, first + 1);

    store::EnrollmentRecord rec;
    ASSERT_EQ(db.get("wire0", rec), store::DbGetStatus::Ok);
    EXPECT_EQ(rec.generation, first + 1);
}

TEST(FleetService, FramedStreamReplayStopsAtDamage)
{
    ChannelScheduler fleet = makeFleet(2, 2);
    FleetService svc(fleet);

    std::vector<char> bytes;
    service::appendRequestFrame(
        bytes, makeRequest(1, RequestKind::QuarantineStatus, "wire0"));
    service::appendRequestFrame(
        bytes, makeRequest(2, RequestKind::FleetSummary, ""));
    const std::size_t intact = bytes.size();
    service::appendRequestFrame(
        bytes, makeRequest(3, RequestKind::Verify, "wire1"));
    bytes[intact + service::kServiceFrameHeader + 2] ^= 0x10;

    const service::StreamDecode decode = svc.submitStream(bytes);
    EXPECT_FALSE(decode.ok());
    EXPECT_EQ(decode.frames, 2u);
    EXPECT_EQ(svc.stats().submitted, 2u);
    EXPECT_EQ(svc.stats().parseErrors, 1u);
    svc.tick();
    EXPECT_EQ(svc.drainResponses().size(), 2u);
}

/** Run a canonical mixed-traffic scenario and return (digest, export). */
std::pair<uint64_t, std::string>
runServiceScenario(unsigned threads, const char *tag)
{
    ChannelScheduler fleet = makeFleet(3, 2, threads);
    const std::string dir = freshDbDir(
        (std::string("svc_det_") + tag + "_" +
         std::to_string(threads))
            .c_str());
    store::EnrollmentDb db(dbConfig(dir));
    if (!db.open())
        return {0, "db open failed"};
    db.attachTelemetry(&fleet.telemetry());
    fleet.attachStore(&db, fleet.channel(0).enrollmentBytes() * 2);
    FleetService svc(fleet);

    uint64_t id = 1;
    for (int t = 0; t < 6; ++t) {
        svc.submit(makeRequest(id++, RequestKind::Verify,
                               "wire" + std::to_string(t % 3)));
        if (t % 2 == 0)
            svc.submit(makeRequest(
                id++, RequestKind::QuarantineStatus, "wire1"));
        if (t == 2)
            svc.submit(makeRequest(id++, RequestKind::Reenroll,
                                   "wire2"));
        if (t % 3 == 0)
            svc.submit(makeRequest(id++, RequestKind::FleetSummary,
                                   ""));
        svc.submit(makeRequest(id++, RequestKind::Verify, "ghost"));
        svc.tick();
    }
    for (int t = 0; t < 4 && svc.pendingRequests() > 0; ++t)
        svc.tick();
    return {svc.responseDigest(), fleet.telemetry().exportJson()};
}

TEST(FleetService, SerialVsPooledDigestAndExportAreBitIdentical)
{
    const auto serial = runServiceScenario(1, "a");
    const auto pooled = runServiceScenario(4, "b");
    EXPECT_EQ(serial.first, pooled.first);
    EXPECT_EQ(serial.second, pooled.second);
}

TEST(FleetService, TelemetryCountsRequestsByKindAndStatus)
{
    ChannelScheduler fleet = makeFleet(2, 2);
    FleetService svc(fleet);
    svc.submit(makeRequest(1, RequestKind::Verify, "wire0"));
    svc.submit(makeRequest(2, RequestKind::QuarantineStatus, "wire1"));
    svc.submit(makeRequest(3, RequestKind::Verify, "ghost"));
    svc.tick();
    const Registry &reg = fleet.telemetry().registry();
    EXPECT_EQ(reg.counterValue("service.requests.verify"), 2u);
    EXPECT_EQ(reg.counterValue("service.requests.quarantine_status"),
              1u);
    EXPECT_EQ(reg.counterValue("service.admitted"), 2u);
    EXPECT_EQ(reg.counterValue("service.rejected"), 1u);
    EXPECT_EQ(reg.counterValue("service.responses.ok"), 2u);
    EXPECT_EQ(reg.counterValue("service.responses.unknown"), 1u);
}

} // namespace
} // namespace divot
