/**
 * @file
 * Service soak (labelled `slow`): a long mixed request stream against
 * a MegaFleet whose store is under a full fault campaign — torn
 * writes, power cuts at both commit points, bit rot, shard
 * truncation. The fleet crash-reopens and replays its journal
 * mid-traffic; the request front end must keep every contract:
 *
 *  - zero junk: no Ok Verify whose authenticated flag disagrees with
 *    its similarity against the accept bar; damaged channels answer
 *    Fenced;
 *  - completeness: every submitted request answers exactly once;
 *  - determinism: serial and pooled runs of the same soak emit
 *    bit-identical response digests.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault.hh"
#include "fleet/megafleet.hh"
#include "store/io.hh"
#include "util/rng.hh"

namespace divot {
namespace {

using service::RequestKind;
using service::ResponseStatus;
using service::ServiceRequest;
using service::ServiceResponse;

struct SoakResult
{
    uint64_t digest = 0;
    uint64_t submitted = 0;
    uint64_t responses = 0;
    uint64_t junk = 0;
    uint64_t crashRecoveries = 0;
    std::size_t stuck = 0;
};

SoakResult
runSoak(unsigned threads, unsigned lanes, const char *tag)
{
    MegaFleetConfig cfg;
    cfg.channels = 3000;
    cfg.fingerprintBins = 16;
    cfg.probesPerTick = 256;
    cfg.store.shards = 32;
    cfg.store.overlayFlushRecords = 64;
    cfg.store.directory = std::string(::testing::TempDir()) +
        "svc_soak_" + tag;
    cfg.threads = threads;
    cfg.reactorLanes = lanes;
    cfg.telemetry.enabled = false;
    store::ensureDir(cfg.store.directory);
    for (unsigned s = 0; s < cfg.store.shards; ++s) {
        const std::string shard = cfg.store.directory + "/shard-" +
            std::to_string(s) + ".bin";
        store::removeFile(shard);
        store::removeFile(shard + ".tmp");
    }
    store::removeFile(cfg.store.directory + "/journal.wal");

    // The bench campaign, scaled to the soak fleet: faults land
    // during enrollment AND during the request stream's re-enrolls.
    FaultPlan plan;
    plan.storageTornWrite(cfg.channels / 8)
        .storageCrash(cfg.channels / 4, StorageCrashPoint::AfterJournal)
        .storageCrash(cfg.channels / 3, StorageCrashPoint::BeforeCommit)
        .storageBitRot(cfg.channels / 2, 1, 12.0)
        .storageTruncation((cfg.channels * 2) / 3, 0.55);
    const FaultInjector injector(plan, Rng(0x50AD5ULL));

    MegaFleet fleet(cfg, Rng(20260808));
    fleet.attachFaultInjector(&injector);
    fleet.enrollAll();

    SoakResult r;
    uint64_t id = 1;
    Rng stream(0x5EAD5ULL);
    const auto drain = [&]() {
        for (const ServiceResponse &resp : fleet.drainResponses()) {
            ++r.responses;
            if (resp.kind == RequestKind::Verify &&
                resp.status == ResponseStatus::Ok) {
                const bool flagged =
                    (resp.flags & service::kResponseAuthenticated)
                    != 0;
                if (flagged !=
                    (resp.similarity >= cfg.similarityThreshold))
                    ++r.junk;
            }
        }
    };
    const uint64_t soakTicks = 40;
    for (uint64_t t = 0; t < soakTicks; ++t) {
        ServiceRequest rq;
        for (int k = 0; k < 12; ++k) {
            rq.id = id++;
            rq.kind = service::RequestKind::Verify;
            rq.channel = MegaFleet::channelId(
                stream.uniformInt(cfg.channels));
            fleet.submit(rq);
        }
        rq.id = id++;
        rq.kind = RequestKind::QuarantineStatus;
        rq.channel =
            MegaFleet::channelId(stream.uniformInt(cfg.channels));
        fleet.submit(rq);
        rq.id = id++;
        rq.kind = RequestKind::FleetSummary;
        rq.channel.clear();
        fleet.submit(rq);
        if (t % 4 == 2) {
            // Re-enroll keeps hitting the faulted store mid-soak, so
            // crash-reopen-replay happens under live traffic.
            rq.id = id++;
            rq.kind = RequestKind::Reenroll;
            rq.channel =
                MegaFleet::channelId(stream.uniformInt(cfg.channels));
            fleet.submit(rq);
        }
        fleet.tick();
        drain();
    }
    for (int extra = 0; extra < 64 && fleet.pendingRequests() > 0;
         ++extra) {
        fleet.tick();
        drain();
    }
    r.stuck = fleet.pendingRequests();
    r.digest = fleet.responseDigest();
    r.submitted = fleet.serviceStats().submitted;
    r.crashRecoveries = fleet.report().crashRecoveries;
    return r;
}

TEST(ServiceSoak, FaultedRequestStreamConvergesWithZeroJunk)
{
    const SoakResult serial = runSoak(1, 1, "serial");
    const SoakResult pooled = runSoak(0, 0, "pooled");

    // The campaign actually fired: the store crash-reopened at least
    // once while traffic was flowing.
    EXPECT_GE(serial.crashRecoveries, 1u);

    EXPECT_EQ(serial.junk, 0u);
    EXPECT_EQ(pooled.junk, 0u);
    EXPECT_EQ(serial.stuck, 0u);
    EXPECT_EQ(pooled.stuck, 0u);
    EXPECT_EQ(serial.responses, serial.submitted);
    EXPECT_EQ(pooled.responses, pooled.submitted);
    EXPECT_EQ(serial.digest, pooled.digest);
}

} // namespace
} // namespace divot
