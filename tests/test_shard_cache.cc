/**
 * @file
 * Tests for the ShardImageCache and its EnrollmentDb integration: the
 * byte budget holds under any access pattern, frequency-based
 * admission pins a hot subset where plain LRU would thrash, per-lane
 * decisions are a pure function of the per-lane access sequence
 * (interleaving-independent — the property the reactor-lane threading
 * discipline relies on), write-through and damage invalidation keep
 * the cache coherent with the image layer, and the stable telemetry
 * export is byte-identical with the cache on or off.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault.hh"
#include "store/codec.hh"
#include "store/enrollment_db.hh"
#include "store/io.hh"
#include "store/shard_cache.hh"
#include "telemetry/telemetry.hh"
#include "util/rng.hh"

namespace divot::store {
namespace {

Fingerprint
testFingerprint(double seed)
{
    Waveform raw(1e-12, {seed, seed + 1.0, seed + 2.0, seed * 0.5});
    Waveform residual(1e-12, {0.5, -0.5, 0.5, -0.5});
    return Fingerprint::fromParts(raw, residual,
                                  "fp" + std::to_string(seed));
}

EnrollmentRecord
testRecord(const std::string &id, double seed)
{
    EnrollmentRecord rec;
    rec.id = id;
    rec.fp = testFingerprint(seed);
    rec.nominal = Waveform(1e-12, {seed, seed});
    rec.generation = 1;
    return rec;
}

/** Fresh empty db directory under the test temp dir. */
std::string
freshDir(const char *name)
{
    const std::string dir = std::string(::testing::TempDir()) + name;
    ensureDir(dir);
    for (unsigned s = 0; s < 64; ++s) {
        const std::string shard =
            dir + "/shard-" + std::to_string(s) + ".bin";
        removeFile(shard);
        removeFile(shard + ".tmp");
        removeFile(shard + ".corrupt");
    }
    removeFile(dir + "/journal.wal");
    return dir;
}

/** A loader producing a one-record view of deterministic size. */
ShardImageCache::Loader
loaderFor(unsigned shard)
{
    return [shard](ShardView &view) {
        const std::string id = "sh" + std::to_string(shard);
        view.records[id] = testRecord(id, shard);
        view.clean = true;
        view.accountBytes();
        return true;
    };
}

std::size_t
oneViewBytes()
{
    ShardView view;
    loaderFor(0)(view);
    return view.bytes;
}

// --------------------------------------------------------------------
// Cache unit behavior

TEST(ShardCache, BudgetHoldsAndLruEvicts)
{
    const std::size_t unit = oneViewBytes();
    ShardCacheConfig cfg;
    cfg.shards = 16;
    cfg.budgetBytes = 3 * unit; // room for three views
    ShardImageCache cache(cfg);

    for (unsigned s = 0; s < 16; ++s) {
        const auto view = cache.acquire(s, loaderFor(s));
        ASSERT_NE(view, nullptr);
        EXPECT_LE(cache.stats().bytes, cfg.budgetBytes);
    }
    const ShardCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 16u);
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LE(stats.peakBytes, cfg.budgetBytes);

    // Cold scan with equal frequencies: the most recent admissions
    // are the residents, the oldest were evicted.
    EXPECT_EQ(cache.peek(0), nullptr);
    EXPECT_NE(cache.peek(15), nullptr);
}

TEST(ShardCache, AdmissionPinsHotShardUnderScan)
{
    const std::size_t unit = oneViewBytes();
    ShardCacheConfig cfg;
    cfg.shards = 32;
    cfg.budgetBytes = 2 * unit;
    ShardImageCache cache(cfg);

    // Heat shard 0 well past any scan candidate's frequency.
    for (int i = 0; i < 8; ++i)
        ASSERT_NE(cache.acquire(0, loaderFor(0)), nullptr);

    // A scan whose working set dwarfs the budget. Plain LRU would
    // evict shard 0 on the first miss that needs its slot; admission
    // control must refuse to evict the hotter resident.
    for (unsigned s = 1; s < 32; ++s)
        ASSERT_NE(cache.acquire(s, loaderFor(s)), nullptr);

    const ShardCacheStats stats = cache.stats();
    EXPECT_NE(cache.peek(0), nullptr);
    EXPECT_EQ(stats.hits, 7u); // accesses 2..8 of shard 0
    EXPECT_GT(stats.rejections, 0u);
    EXPECT_LE(stats.bytes, cfg.budgetBytes);
}

TEST(ShardCache, OversizedViewServedTransientlyNeverStored)
{
    ShardCacheConfig cfg;
    cfg.shards = 4;
    cfg.budgetBytes = 64; // smaller than any real view
    ShardImageCache cache(cfg);

    const auto view = cache.acquire(1, loaderFor(1));
    ASSERT_NE(view, nullptr);
    EXPECT_EQ(view->records.size(), 1u);
    EXPECT_EQ(cache.peek(1), nullptr);
    EXPECT_EQ(cache.stats().bytes, 0u);
    EXPECT_GT(cache.stats().rejections, 0u);
}

/**
 * The lane-threading contract: every admission/eviction decision for
 * lane k depends only on lane k's own access order, so any global
 * interleaving of the per-lane sequences — which is exactly what
 * running lanes on different threads produces — reaches the same
 * final state.
 */
TEST(ShardCache, LaneDecisionsIndependentOfInterleaving)
{
    const std::size_t unit = oneViewBytes();
    ShardCacheConfig cfg;
    cfg.shards = 8;
    cfg.lanes = 2;
    cfg.budgetBytes = 4 * unit; // two views per lane
    // Lane 0 owns even shards, lane 1 odd shards.
    const std::vector<unsigned> lane0 = {0, 2, 4, 0, 6, 0, 2};
    const std::vector<unsigned> lane1 = {1, 3, 1, 5, 7, 1, 3};

    // Sequential: all of lane 0, then all of lane 1.
    ShardImageCache seq(cfg);
    for (unsigned s : lane0)
        ASSERT_NE(seq.acquire(s, loaderFor(s)), nullptr);
    for (unsigned s : lane1)
        ASSERT_NE(seq.acquire(s, loaderFor(s)), nullptr);

    // Interleaved: alternate between the lanes' sequences.
    ShardImageCache mix(cfg);
    for (std::size_t i = 0; i < lane0.size(); ++i) {
        ASSERT_NE(mix.acquire(lane0[i], loaderFor(lane0[i])), nullptr);
        ASSERT_NE(mix.acquire(lane1[i], loaderFor(lane1[i])), nullptr);
    }

    for (unsigned s = 0; s < cfg.shards; ++s)
        EXPECT_EQ(seq.peek(s) != nullptr, mix.peek(s) != nullptr)
            << "shard " << s;
    const ShardCacheStats a = seq.stats();
    const ShardCacheStats b = mix.stats();
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.admissions, b.admissions);
    EXPECT_EQ(a.rejections, b.rejections);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.bytes, b.bytes);
}

// --------------------------------------------------------------------
// EnrollmentDb integration

EnrollmentDbConfig
cachedConfig(const std::string &dir)
{
    EnrollmentDbConfig cfg;
    cfg.directory = dir;
    cfg.shards = 1; // all records in one image
    cfg.overlayFlushRecords = 4;
    cfg.shardCacheBytes = 1u << 20;
    return cfg;
}

TEST(ShardCacheDb, WriteThroughServesFreshRecords)
{
    const std::string dir = freshDir("cache_wt");
    EnrollmentDb db(cachedConfig(dir));
    ASSERT_TRUE(db.open());
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(db.put(testRecord("wt" + std::to_string(i), i)));
    ASSERT_TRUE(db.checkpoint());

    bool from_cache = false;
    const auto view = db.shardView(0, &from_cache);
    ASSERT_NE(view, nullptr);
    EXPECT_EQ(view->records.size(), 4u);

    // Rewrite one record through the normal mutation path; the flush
    // must write through so the next cached read sees generation 2.
    EnrollmentRecord fresh = testRecord("wt1", 41.0);
    fresh.generation = 2;
    ASSERT_TRUE(db.put(fresh));
    ASSERT_TRUE(db.checkpoint());

    const auto after = db.shardView(0, &from_cache);
    ASSERT_NE(after, nullptr);
    EXPECT_TRUE(from_cache);
    EXPECT_EQ(after->records.at("wt1").generation, 2u);
    EXPECT_GT(db.cacheStats().updates, 0u);

    EnrollmentRecord out;
    EXPECT_EQ(db.get("wt1", out), DbGetStatus::Ok);
    EXPECT_EQ(out.generation, 2u);
}

TEST(ShardCacheDb, RotInvalidatesAndScrubRewriteRefreshes)
{
    const std::string dir = freshDir("cache_rot");
    const EnrollmentDbConfig cfg = cachedConfig(dir);
    {
        EnrollmentDb db(cfg);
        ASSERT_TRUE(db.open());
        for (int i = 0; i < 4; ++i)
            ASSERT_TRUE(db.put(
                testRecord("rot" + std::to_string(i), i)));
        ASSERT_TRUE(db.checkpoint());
    }

    std::vector<char> pristine;
    {
        EnrollmentDb peek(cfg);
        ASSERT_TRUE(readFile(peek.shardPath(0), pristine));
    }
    FaultPlan plan;
    plan.storageBitRot(0, 1, 3.0); // rot exactly one write: the put
    const FaultInjector injector(plan, Rng(11));
    EnrollmentDb db(cfg);
    db.attachFaultInjector(&injector);
    ASSERT_TRUE(db.open());

    // Warm the cache on the clean image, then land the rot.
    ASSERT_NE(db.shardView(0), nullptr);
    ASSERT_TRUE(db.put(testRecord("extra", 9.0)));
    std::vector<char> rotted;
    ASSERT_TRUE(readFile(db.shardPath(0), rotted));
    ASSERT_NE(pristine, rotted);

    // Damage invalidated the entry: the next view is a re-decode of
    // the rotted bytes (lenient parse), not the stale clean image.
    bool from_cache = true;
    const auto damaged = db.shardView(0, &from_cache);
    ASSERT_NE(damaged, nullptr);
    EXPECT_GT(db.cacheStats().invalidations, 0u);

    // Scrub rewrites a pristine dual-bank image and writes through;
    // the cached view must match the repaired on-disk content.
    const ScrubResult scrub = db.scrubShard(0);
    EXPECT_TRUE(scrub.scanned);
    EXPECT_TRUE(scrub.lostIds.empty());
    const auto repaired = db.shardView(0, &from_cache);
    ASSERT_NE(repaired, nullptr);
    EXPECT_TRUE(from_cache);
    EXPECT_TRUE(repaired->clean);
    EXPECT_EQ(repaired->records.size(), 5u);
    for (int i = 0; i < 4; ++i) {
        EnrollmentRecord out;
        EXPECT_EQ(db.get("rot" + std::to_string(i), out),
                  DbGetStatus::Ok);
    }
}

TEST(ShardCacheDb, StableExportIdenticalCacheOnOff)
{
    auto drive = [](const std::string &dir, std::size_t cache_bytes,
                    std::string &json) {
        EnrollmentDbConfig cfg;
        cfg.directory = dir;
        cfg.shards = 4;
        cfg.overlayFlushRecords = 4;
        cfg.shardCacheBytes = cache_bytes;
        Telemetry telemetry;
        EnrollmentDb db(cfg);
        db.attachTelemetry(&telemetry);
        ASSERT_TRUE(db.open());
        for (int i = 0; i < 24; ++i)
            ASSERT_TRUE(db.put(
                testRecord("ch" + std::to_string(i), i)));
        for (int i = 0; i < 24; i += 3) {
            EnrollmentRecord out;
            EXPECT_EQ(db.get("ch" + std::to_string(i), out),
                      DbGetStatus::Ok);
        }
        for (unsigned s = 0; s < cfg.shards; ++s)
            ASSERT_NE(db.shardView(s), nullptr);
        ASSERT_TRUE(db.checkpoint());
        json = telemetry.exportJson();
    };

    std::string with_cache;
    std::string without_cache;
    drive(freshDir("cache_tm_on"), 1u << 20, with_cache);
    drive(freshDir("cache_tm_off"), 0, without_cache);
    EXPECT_EQ(with_cache, without_cache);

    // Sanity: the cached run did count cache traffic (in the unstable
    // tier, invisible above).
    const std::string dir = freshDir("cache_tm_on2");
    EnrollmentDbConfig cfg;
    cfg.directory = dir;
    cfg.shards = 4;
    cfg.overlayFlushRecords = 4;
    cfg.shardCacheBytes = 1u << 20;
    EnrollmentDb db(cfg);
    ASSERT_TRUE(db.open());
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(db.put(testRecord("s" + std::to_string(i), i)));
    ASSERT_TRUE(db.checkpoint());
    ASSERT_NE(db.shardView(0), nullptr);
    ASSERT_NE(db.shardView(0), nullptr);
    EXPECT_GT(db.cacheStats().hits + db.cacheStats().updates, 0u);
}

} // namespace
} // namespace divot::store
