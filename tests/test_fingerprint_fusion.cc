/**
 * @file
 * Tests for the multi-wire score-fusion module: geometric-mean and
 * log-likelihood rules, the dispatch config, and M-of-N wire voting.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fingerprint/fusion.hh"

namespace divot {
namespace {

TEST(Fusion, GeometricMeanSingleWireIsIdentity)
{
    EXPECT_DOUBLE_EQ(fuseGeometricMean({0.73}), 0.73);
    EXPECT_DOUBLE_EQ(fuseGeometricMean({0.02}), 0.02);
}

TEST(Fusion, GeometricMeanMatchesClosedForm)
{
    const std::vector<double> scores{0.9, 0.4, 0.6};
    const double expected = std::exp(
        (std::log(0.9) + std::log(0.4) + std::log(0.6)) / 3.0);
    EXPECT_DOUBLE_EQ(fuseGeometricMean(scores), expected);
}

TEST(Fusion, GeometricMeanOneDeadWireCollapsesScore)
{
    // The multiplicative collapse is the whole point: one mismatched
    // wire drags the fused score far below any healthy wire.
    const double fused = fuseGeometricMean({0.9, 0.9, 0.9, 1e-6});
    EXPECT_LT(fused, 0.05);
}

TEST(Fusion, GeometricMeanFloorsHardZero)
{
    const double fused = fuseGeometricMean({0.0, 0.9});
    EXPECT_TRUE(std::isfinite(fused));
    EXPECT_GT(fused, 0.0);
}

TEST(Fusion, LogLikelihoodSingleWireIsIdentity)
{
    EXPECT_NEAR(fuseLogLikelihood({0.73}), 0.73, 1e-12);
    EXPECT_NEAR(fuseLogLikelihood({0.25}), 0.25, 1e-12);
}

TEST(Fusion, LogLikelihoodAccumulatesAgreement)
{
    // Several moderately confident wires should fuse to something
    // stronger than any single one; symmetric disbelief fuses lower.
    EXPECT_GT(fuseLogLikelihood({0.7, 0.7, 0.7}), 0.7);
    EXPECT_LT(fuseLogLikelihood({0.3, 0.3, 0.3}), 0.3);
}

TEST(Fusion, LogLikelihoodBounded)
{
    const double fused = fuseLogLikelihood({0.999, 0.999, 0.999, 0.999});
    EXPECT_GT(fused, 0.999);
    EXPECT_LE(fused, 1.0);
}

TEST(Fusion, DispatchFollowsConfiguredRule)
{
    const std::vector<double> scores{0.8, 0.5};
    FusionConfig geo;
    geo.rule = FusionRule::GeometricMean;
    FusionConfig loglik;
    loglik.rule = FusionRule::LogLikelihood;
    EXPECT_DOUBLE_EQ(fuseScores(geo, scores),
                     fuseGeometricMean(scores));
    EXPECT_DOUBLE_EQ(fuseScores(loglik, scores),
                     fuseLogLikelihood(scores));
}

TEST(Fusion, RuleNames)
{
    EXPECT_STREQ(fusionRuleName(FusionRule::GeometricMean),
                 "geometric-mean");
    EXPECT_STREQ(fusionRuleName(FusionRule::LogLikelihood),
                 "log-likelihood");
}

TEST(Fusion, CountWiresAbove)
{
    const std::vector<double> scores{0.9, 0.35, 0.1};
    EXPECT_EQ(countWiresAbove(scores, 0.35), 2u);
    EXPECT_EQ(countWiresAbove(scores, 0.95), 0u);
    EXPECT_EQ(countWiresAbove(scores, 0.0), 3u);
}

TEST(Fusion, VoteMOfN)
{
    const std::vector<double> scores{0.9, 0.5, 0.1};
    EXPECT_TRUE(voteMOfN(scores, 0.4, 2));
    EXPECT_FALSE(voteMOfN(scores, 0.4, 3));
    // votes == 0 behaves as "any wire".
    EXPECT_TRUE(voteMOfN(scores, 0.8, 0));
    EXPECT_FALSE(voteMOfN(scores, 0.95, 0));
}

} // namespace
} // namespace divot
