/**
 * @file
 * Tests for the synthetic workload generators.
 */

#include <gtest/gtest.h>

#include "memsys/workload.hh"

namespace divot {
namespace {

TEST(Workload, RateMatchesConfiguration)
{
    WorkloadGenerator gen(WorkloadKind::Random, 1 << 20, 50.0, 0.3,
                          Rng(1));
    MemRequest req;
    uint64_t count = 0;
    const uint64_t cycles = 200000;
    for (uint64_t c = 0; c < cycles; ++c) {
        if (gen.maybeGenerate(c, req))
            ++count;
    }
    const double rate = 1000.0 * static_cast<double>(count) /
        static_cast<double>(cycles);
    EXPECT_NEAR(rate, 50.0, 2.0);
    EXPECT_EQ(gen.generated(), count);
}

TEST(Workload, AddressesWithinFootprint)
{
    const uint64_t footprint = 4096;
    for (WorkloadKind kind : {WorkloadKind::Sequential,
                              WorkloadKind::Random,
                              WorkloadKind::HotCold}) {
        WorkloadGenerator gen(kind, footprint, 200.0, 0.5, Rng(2));
        MemRequest req;
        for (uint64_t c = 0; c < 50000; ++c) {
            if (gen.maybeGenerate(c, req))
                ASSERT_LT(req.address, footprint);
        }
    }
}

TEST(Workload, WriteFractionHonored)
{
    WorkloadGenerator gen(WorkloadKind::Random, 1 << 16, 300.0, 0.25,
                          Rng(3));
    MemRequest req;
    uint64_t writes = 0, total = 0;
    for (uint64_t c = 0; c < 200000; ++c) {
        if (gen.maybeGenerate(c, req)) {
            ++total;
            writes += req.isWrite;
        }
    }
    EXPECT_NEAR(static_cast<double>(writes) /
                    static_cast<double>(total), 0.25, 0.02);
}

TEST(Workload, SequentialIsSequential)
{
    WorkloadGenerator gen(WorkloadKind::Sequential, 1 << 20, 1000.0,
                          0.0, Rng(4));
    MemRequest req;
    uint64_t prev = 0;
    bool first = true;
    for (uint64_t c = 0; c < 5000; ++c) {
        if (gen.maybeGenerate(c, req)) {
            if (!first)
                EXPECT_EQ(req.address, prev + 1);
            prev = req.address;
            first = false;
        }
    }
}

TEST(Workload, HotColdConcentratesAccesses)
{
    const uint64_t footprint = 100000;
    WorkloadGenerator gen(WorkloadKind::HotCold, footprint, 500.0, 0.0,
                          Rng(5));
    MemRequest req;
    uint64_t hot = 0, total = 0;
    for (uint64_t c = 0; c < 200000; ++c) {
        if (gen.maybeGenerate(c, req)) {
            ++total;
            hot += req.address < footprint / 10;
        }
    }
    EXPECT_GT(static_cast<double>(hot) / static_cast<double>(total),
              0.8);
}

TEST(Workload, IdsUniqueAndMonotone)
{
    WorkloadGenerator gen(WorkloadKind::Random, 1024, 500.0, 0.5,
                          Rng(6));
    MemRequest req;
    uint64_t prev = 0;
    for (uint64_t c = 0; c < 20000; ++c) {
        if (gen.maybeGenerate(c, req)) {
            EXPECT_GT(req.id, prev);
            prev = req.id;
            EXPECT_EQ(req.arrivalCycle, c);
        }
    }
}

TEST(Workload, Validation)
{
    EXPECT_DEATH(WorkloadGenerator(WorkloadKind::Random, 0, 50.0, 0.3,
                                   Rng(7)),
                 "footprint");
    EXPECT_DEATH(WorkloadGenerator(WorkloadKind::Random, 10, 0.0, 0.3,
                                   Rng(8)),
                 "rate");
    EXPECT_DEATH(WorkloadGenerator(WorkloadKind::Random, 10, 5.0, 1.5,
                                   Rng(9)),
                 "fraction");
}

} // namespace
} // namespace divot
