/**
 * @file
 * Tests for tamper detection & localization (Section IV-F): the peak
 * of E_xy lands at the attack's physical position, benign noise stays
 * below the calibrated threshold, and the calibration helper works.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fingerprint/localize.hh"
#include "itdr/itdr.hh"
#include "txline/manufacturing.hh"
#include "txline/tamper.hh"

namespace divot {
namespace {

struct Fixture
{
    TransmissionLine line;
    ItdrConfig cfg;
    ITdr itdr;
    Waveform nominal;
    Fingerprint enrolled;

    Fixture()
        : line(makeLine()), itdr(cfg, Rng(31))
    {
        TransmissionLine uniform(
            std::vector<double>(line.segments(), 50.0),
            line.segmentLength(), line.velocity(), 50.0, 50.0,
            line.lossNeperPerMeter(), "u");
        nominal = itdr.idealIip(uniform);
        std::vector<IipMeasurement> reps;
        for (int i = 0; i < 16; ++i)
            reps.push_back(itdr.measure(line));
        enrolled = Fingerprint::enroll(reps, nominal, "enr");
    }

    static TransmissionLine
    makeLine()
    {
        ProcessParams params;
        ManufacturingProcess fab(params, Rng(21));
        auto z = fab.drawImpedanceProfile(0.25, 0.5e-3);
        return TransmissionLine(std::move(z), 0.5e-3, params.velocity,
                                50.0, 50.2, params.lossNeperPerMeter,
                                "loc");
    }

    Fingerprint
    averaged(const TransmissionLine &l, int n = 16)
    {
        std::vector<IipMeasurement> reps;
        for (int i = 0; i < n; ++i)
            reps.push_back(itdr.measure(l));
        return Fingerprint::enroll(reps, nominal, "cur");
    }
};

TEST(Localizer, BenignStaysBelowPaperThreshold)
{
    Fixture fx;
    TamperLocalizer loc(5e-7);
    const TamperReport rep =
        loc.inspect(fx.enrolled, fx.averaged(fx.line), fx.line);
    EXPECT_FALSE(rep.detected);
    EXPECT_LT(rep.peakError, 5e-7);
}

TEST(Localizer, MagneticProbeDetectedAtPaperThreshold)
{
    // The subtlest attack in the paper still clears the 5e-7 line.
    Fixture fx;
    TamperLocalizer loc(5e-7);
    MagneticProbe probe(0.5);
    const auto attacked = probe.apply(fx.line);
    const TamperReport rep =
        loc.inspect(fx.enrolled, fx.averaged(attacked), fx.line);
    EXPECT_TRUE(rep.detected);
    EXPECT_GT(rep.peakError, 5e-7);
    EXPECT_NEAR(rep.location, 0.5 * fx.line.length(),
                0.15 * fx.line.length());
}

TEST(Localizer, WireTapDetectedStrongly)
{
    Fixture fx;
    TamperLocalizer loc(5e-7);
    WireTap tap(0.4, 50.0);
    const auto attacked = tap.apply(fx.line);
    const TamperReport rep =
        loc.inspect(fx.enrolled, fx.averaged(attacked, 4), fx.line);
    EXPECT_TRUE(rep.detected);
    // Wire-tapping is the most invasive attack: orders above the
    // magnetic probe.
    EXPECT_GT(rep.peakError, 1e-5);
}

TEST(Localizer, WireTapScarStillDetectedAfterRemoval)
{
    // Section IV-E: the IIP damage is permanent.
    Fixture fx;
    TamperLocalizer loc(5e-7);
    WireTap tap(0.4, 50.0);
    const auto removed = tap.applyRemoved(fx.line);
    const TamperReport rep =
        loc.inspect(fx.enrolled, fx.averaged(removed, 8), fx.line);
    EXPECT_TRUE(rep.detected);
}

TEST(Localizer, LoadModificationLocalizesToLineEnd)
{
    Fixture fx;
    TamperLocalizer loc(5e-7);
    LoadModification swap(70.0);
    const auto attacked = swap.apply(fx.line);
    const TamperReport rep =
        loc.inspect(fx.enrolled, fx.averaged(attacked, 4), fx.line);
    EXPECT_TRUE(rep.detected);
    EXPECT_GT(rep.location, 0.85 * fx.line.length());
}

/** Localization accuracy across attack positions. */
class LocalizeSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(LocalizeSweep, PeakLandsNearAttack)
{
    const double pos = GetParam();
    Fixture fx;
    TamperLocalizer loc(5e-7);
    MagneticProbe probe(pos, 0.08);
    const auto attacked = probe.apply(fx.line);
    const TamperReport rep =
        loc.inspect(fx.enrolled, fx.averaged(attacked, 8), fx.line);
    ASSERT_TRUE(rep.detected);
    EXPECT_NEAR(rep.location, pos * fx.line.length(),
                0.12 * fx.line.length());
}

INSTANTIATE_TEST_SUITE_P(Positions, LocalizeSweep,
                         ::testing::Values(0.25, 0.5, 0.75));

TEST(Localizer, CalibrateThresholdClearsBenignPeaks)
{
    Fixture fx;
    std::vector<Fingerprint> benign;
    for (int i = 0; i < 6; ++i)
        benign.push_back(fx.averaged(fx.line, 4));
    const double th =
        TamperLocalizer::calibrateThreshold(fx.enrolled, benign, 3.0);
    for (const auto &fp : benign)
        EXPECT_LT(peakError(fx.enrolled, fp), th);
}

TEST(Localizer, Validation)
{
    EXPECT_DEATH(TamperLocalizer(0.0), "threshold");
    Fixture fx;
    std::vector<Fingerprint> none;
    EXPECT_DEATH(
        TamperLocalizer::calibrateThreshold(fx.enrolled, none, 3.0),
        "benign");
    std::vector<Fingerprint> some{fx.averaged(fx.line, 2)};
    EXPECT_DEATH(
        TamperLocalizer::calibrateThreshold(fx.enrolled, some, 0.5),
        "margin");
}

} // namespace
} // namespace divot
