/**
 * @file
 * Tests for the deterministic RNG: reproducibility, stream
 * independence, and distribution moments.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hh"
#include "util/stats.hh"

namespace divot {
namespace {

TEST(Rng, DeterministicBySeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    RunningStats s;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        s.add(u);
    }
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
    EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRange)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    RunningStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.gaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.02);
    EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(13);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.gaussian(5.0, 2.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, UniformIntBoundsAndCoverage)
{
    Rng rng(17);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const uint64_t v = rng.uniformInt(10);
        ASSERT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(19);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate)
{
    Rng rng(21);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, ForkedStreamsIndependent)
{
    Rng parent(31);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    // Streams should not be identical...
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
    // ...and correlation of uniforms should be negligible.
    Rng c = parent.fork(3);
    Rng d = parent.fork(4);
    std::vector<double> xs, ys;
    for (int i = 0; i < 20000; ++i) {
        xs.push_back(c.uniform());
        ys.push_back(d.uniform());
    }
    EXPECT_LT(std::fabs(pearson(xs, ys)), 0.03);
}

TEST(Rng, SameTagSuccessiveForksDiffer)
{
    Rng parent(33);
    Rng a = parent.fork(42);
    Rng b = parent.fork(42);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, GaussianVectorFills)
{
    Rng rng(35);
    std::vector<double> v(1000);
    rng.gaussianVector(v);
    RunningStats s;
    s.addAll(v);
    EXPECT_NEAR(s.mean(), 0.0, 0.15);
    EXPECT_NEAR(s.stddev(), 1.0, 0.15);
}

} // namespace
} // namespace divot
