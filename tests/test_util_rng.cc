/**
 * @file
 * Tests for the deterministic RNG: reproducibility, stream
 * independence, and distribution moments.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <utility>

#include "util/rng.hh"
#include "util/stats.hh"

namespace divot {
namespace {

TEST(Rng, DeterministicBySeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    RunningStats s;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        s.add(u);
    }
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
    EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRange)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    RunningStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.gaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.02);
    EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(13);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.gaussian(5.0, 2.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, UniformIntBoundsAndCoverage)
{
    Rng rng(17);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const uint64_t v = rng.uniformInt(10);
        ASSERT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(19);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate)
{
    Rng rng(21);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, ForkedStreamsIndependent)
{
    Rng parent(31);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    // Streams should not be identical...
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
    // ...and correlation of uniforms should be negligible.
    Rng c = parent.fork(3);
    Rng d = parent.fork(4);
    std::vector<double> xs, ys;
    for (int i = 0; i < 20000; ++i) {
        xs.push_back(c.uniform());
        ys.push_back(d.uniform());
    }
    EXPECT_LT(std::fabs(pearson(xs, ys)), 0.03);
}

TEST(Rng, SameTagSuccessiveForksDiffer)
{
    Rng parent(33);
    Rng a = parent.fork(42);
    Rng b = parent.fork(42);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BinomialDegenerateCases)
{
    Rng rng(41);
    const uint64_t before = Rng(41).next();
    EXPECT_EQ(rng.binomial(0, 0.5), 0u);
    EXPECT_EQ(rng.binomial(100, 0.0), 0u);
    EXPECT_EQ(rng.binomial(100, -0.5), 0u);
    EXPECT_EQ(rng.binomial(100, 1.0), 100u);
    EXPECT_EQ(rng.binomial(100, 1.5), 100u);
    // Degenerate draws consume no stream state.
    EXPECT_EQ(rng.next(), before);
}

TEST(Rng, BinomialBounds)
{
    Rng rng(43);
    for (int i = 0; i < 10000; ++i) {
        const uint64_t k = rng.binomial(37, 0.3);
        ASSERT_LE(k, 37u);
    }
}

/** Exact-moment checks on both sides of the small/large-n seam. */
class BinomialMoments
    : public ::testing::TestWithParam<std::pair<uint64_t, double>>
{
};

TEST_P(BinomialMoments, MeanAndVarianceMatch)
{
    const uint64_t n = GetParam().first;
    const double p = GetParam().second;
    Rng rng(45 + n);
    RunningStats s;
    const int reps = 200000;
    for (int i = 0; i < reps; ++i)
        s.add(static_cast<double>(rng.binomial(n, p)));
    const double mean = static_cast<double>(n) * p;
    const double var = mean * (1.0 - p);
    // CI bounds: the sample mean of `reps` draws has stddev
    // sqrt(var/reps); the sample variance estimate is looser. The
    // normal-cutoff branch adds O(1) rounding variance, covered by
    // the +0.3 allowance.
    EXPECT_NEAR(s.mean(), mean, 5.0 * std::sqrt(var / reps) + 1e-9);
    EXPECT_NEAR(s.variance(), var, 0.05 * var + 0.3);
}

INSTANTIATE_TEST_SUITE_P(
    SmallAndLargeN, BinomialMoments,
    ::testing::Values(std::make_pair<uint64_t, double>(1, 0.5),
                      std::make_pair<uint64_t, double>(10, 0.13),
                      std::make_pair<uint64_t, double>(10, 0.87),
                      std::make_pair<uint64_t, double>(64, 0.31),
                      std::make_pair<uint64_t, double>(65, 0.31),
                      std::make_pair<uint64_t, double>(400, 0.07),
                      std::make_pair<uint64_t, double>(1000, 0.5)));

TEST(Rng, BinomialAlgorithmSeamContinuous)
{
    // The exact-inversion side (n = cutoff) and the normal-cutoff
    // side (n = cutoff + 1) of the seam must describe one smoothly
    // varying family: their standardized sample means both sit within
    // CI bounds of the shared analytic law.
    const double p = 0.4;
    for (uint64_t n : {Rng::binomialInversionCutoff,
                       Rng::binomialInversionCutoff + 1}) {
        Rng rng(47);
        RunningStats s;
        const int reps = 100000;
        for (int i = 0; i < reps; ++i)
            s.add(static_cast<double>(rng.binomial(n, p)));
        const double mean = static_cast<double>(n) * p;
        const double sd = std::sqrt(mean * (1.0 - p));
        const double z =
            (s.mean() - mean) / (sd / std::sqrt(double(reps)));
        EXPECT_LT(std::fabs(z), 5.0) << "n=" << n;
    }
}

TEST(Rng, BinomialDeterministicUnderForkStable)
{
    const Rng parent(49);
    Rng a = parent.forkStable(7);
    Rng b = parent.forkStable(7);
    for (int i = 0; i < 1000; ++i) {
        const uint64_t n = 1 + (static_cast<uint64_t>(i) % 200);
        const double p = 0.01 + 0.98 * (i % 97) / 97.0;
        ASSERT_EQ(a.binomial(n, p), b.binomial(n, p)) << i;
    }
    // ...and the derivation is insensitive to unrelated child forks.
    Rng c = parent.forkStable(7);
    Rng noise = parent.forkStable(8);
    (void)noise.binomial(100, 0.5);
    Rng d = parent.forkStable(7);
    EXPECT_EQ(c.binomial(50, 0.25), d.binomial(50, 0.25));
}

TEST(Rng, GaussianVectorFills)
{
    Rng rng(35);
    std::vector<double> v(1000);
    rng.gaussianVector(v);
    RunningStats s;
    s.addAll(v);
    EXPECT_NEAR(s.mean(), 0.0, 0.15);
    EXPECT_NEAR(s.stddev(), 1.0, 0.15);
}

} // namespace
} // namespace divot
