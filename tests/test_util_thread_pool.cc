/**
 * @file
 * Tests for the campaign thread pool: queue semantics, parallelFor
 * coverage, exception propagation, and the DIVOT_THREADS resolution
 * the study driver and benches rely on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_pool.hh"

namespace divot {
namespace {

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    pool.parallelFor(n, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForDisjointWritesMatchSerial)
{
    constexpr std::size_t n = 512;
    auto body = [](std::size_t i) {
        return static_cast<double>(i) * 1.5 + 2.0;
    };

    std::vector<double> serial(n), parallel(n);
    ThreadPool one(1);
    one.parallelFor(n, [&](std::size_t i) { serial[i] = body(i); });
    ThreadPool many(8);
    many.parallelFor(n, [&](std::size_t i) { parallel[i] = body(i); });
    EXPECT_EQ(serial, parallel);
}

TEST(ThreadPool, SubmitAndWaitDrainsQueue)
{
    ThreadPool pool(3);
    std::atomic<int> done{0};
    for (int i = 0; i < 64; ++i)
        pool.submit([&done] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 64);

    // The pool stays usable after a drain.
    pool.submit([&done] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 65);
}

TEST(ThreadPool, ParallelForPropagatesFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.parallelFor(100,
                         [&](std::size_t i) {
                             ++ran;
                             if (i == 37)
                                 throw std::runtime_error("bin 37");
                         }),
        std::runtime_error);
    // Workers drained before the rethrow: the pool is reusable.
    pool.parallelFor(8, [&](std::size_t) { ++ran; });
    EXPECT_GE(ran.load(), 8);
}

TEST(ThreadPool, SubmitExceptionSurfacesAtDrain)
{
    ThreadPool pool(2);
    std::atomic<int> done{0};
    pool.submit([] { throw std::runtime_error("task failed"); });
    pool.submit([&done] { ++done; });
    pool.submit([&done] { ++done; });
    // wait() never throws; the error stays pending for drain().
    pool.wait();
    EXPECT_EQ(done.load(), 2);
    EXPECT_THROW(pool.drain(), std::runtime_error);

    // The error is cleared: the next drain is clean and the pool
    // stays usable.
    pool.submit([&done] { ++done; });
    EXPECT_NO_THROW(pool.drain());
    EXPECT_EQ(done.load(), 3);
}

TEST(ThreadPool, DrainKeepsFirstOfManyErrors)
{
    ThreadPool pool(1);  // serialize: "first" is well defined
    for (int i = 0; i < 4; ++i) {
        pool.submit([i] {
            throw std::runtime_error("task " + std::to_string(i));
        });
    }
    try {
        pool.drain();
        FAIL() << "drain did not rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task 0");
    }
}

TEST(ThreadPool, ZeroIterationsIsANoop)
{
    ThreadPool pool(2);
    bool touched = false;
    pool.parallelFor(0, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPool, DefaultThreadCountHonorsEnvironment)
{
    ASSERT_EQ(setenv("DIVOT_THREADS", "3", 1), 0);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 3u);

    ASSERT_EQ(setenv("DIVOT_THREADS", "garbage", 1), 0);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);

    ASSERT_EQ(unsetenv("DIVOT_THREADS"), 0);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

} // namespace
} // namespace divot
