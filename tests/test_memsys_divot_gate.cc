/**
 * @file
 * Tests for the DivotGate coupling: monitoring cadence, attack
 * injection, detection latency, and controller/device reactions.
 */

#include <gtest/gtest.h>

#include "auth/protocol.hh"
#include "memsys/divot_gate.hh"
#include "txline/manufacturing.hh"
#include "txline/tamper.hh"

namespace divot {
namespace {

struct Harness
{
    TransmissionLine bus;
    Sdram sdram{SdramTiming{}, SdramGeometry{}};
    MemoryController ctrl{sdram};
    TwoWayAuthProtocol proto{AuthConfig{}, ItdrConfig{}, Rng(11),
                             "gate-test"};

    explicit Harness(uint64_t seed = 3)
        : bus(fabBus(seed))
    {
        proto.calibrate(bus, 8);
    }

    static TransmissionLine
    fabBus(uint64_t seed)
    {
        ProcessParams params;
        ManufacturingProcess fab(params, Rng(seed));
        auto z = fab.drawImpedanceProfile(0.08, 0.5e-3);
        return TransmissionLine(std::move(z), 0.5e-3, params.velocity,
                                50.0, 50.3,
                                params.lossNeperPerMeter, "gbus");
    }
};

TEST(DivotGate, RoundCadenceFromBudget)
{
    Harness h;
    DivotGate gate(h.proto, h.ctrl, h.sdram, h.bus, 156.25e6);
    EXPECT_GT(gate.roundCycles(), 1000u);
    // Before a round completes, nothing happens.
    gate.tick(0);
    EXPECT_EQ(gate.roundsCompleted(), 0u);
    gate.tick(gate.roundCycles());
    EXPECT_EQ(gate.roundsCompleted(), 1u);
    ASSERT_TRUE(gate.lastOutcome() != nullptr);
    EXPECT_TRUE(gate.lastOutcome()->busTrusted);
}

TEST(DivotGate, BenignRunStaysTrusted)
{
    Harness h;
    DivotGate gate(h.proto, h.ctrl, h.sdram, h.bus, 156.25e6);
    for (uint64_t c = 0; c < 20 * gate.roundCycles();
         c += gate.roundCycles()) {
        gate.tick(c);
    }
    EXPECT_TRUE(h.ctrl.busTrusted());
    EXPECT_FALSE(h.sdram.accessBlocked());
    EXPECT_TRUE(gate.detections().empty());
}

TEST(DivotGate, ColdBootSwapDetectedAndBlocked)
{
    Harness h;
    DivotGate gate(h.proto, h.ctrl, h.sdram, h.bus, 156.25e6);
    const uint64_t attack_cycle = 3 * gate.roundCycles() + 17;
    TransmissionLine foreign = Harness::fabBus(99);
    gate.scheduleEvent({attack_cycle, foreign, "swap"});

    uint64_t cycle = 0;
    const uint64_t horizon = 40 * gate.roundCycles();
    while (cycle < horizon && gate.detections().empty()) {
        gate.tick(cycle);
        ++cycle;
    }
    ASSERT_FALSE(gate.detections().empty());
    const DetectionRecord &rec = gate.detections().front();
    EXPECT_EQ(rec.attackCycle, attack_cycle);
    EXPECT_GE(rec.detectedCycle, attack_cycle);
    EXPECT_EQ(rec.latencyCycles, rec.detectedCycle - rec.attackCycle);
    EXPECT_GT(rec.latencySeconds, 0.0);
    // Reactions engaged on both sides.
    EXPECT_FALSE(h.ctrl.busTrusted());
    EXPECT_TRUE(h.sdram.accessBlocked());
}

TEST(DivotGate, DetectionLatencyBoundedByWindowRounds)
{
    // The sliding average window is 16 rounds; a wholesale bus swap
    // must be flagged well within that.
    Harness h;
    DivotGate gate(h.proto, h.ctrl, h.sdram, h.bus, 156.25e6);
    const uint64_t attack_cycle = gate.roundCycles() + 1;
    gate.scheduleEvent({attack_cycle, Harness::fabBus(55), "swap"});
    uint64_t cycle = 0;
    const uint64_t horizon = 40 * gate.roundCycles();
    while (cycle < horizon && gate.detections().empty()) {
        gate.tick(cycle);
        ++cycle;
    }
    ASSERT_FALSE(gate.detections().empty());
    EXPECT_LE(gate.detections().front().latencyCycles,
              17 * gate.roundCycles());
}

TEST(DivotGate, RepairRestoresTrust)
{
    Harness h;
    AuthConfig quick;
    quick.averageWindow = 4;
    TwoWayAuthProtocol proto(quick, ItdrConfig{}, Rng(13), "r");
    proto.calibrate(h.bus, 8);
    DivotGate gate(proto, h.ctrl, h.sdram, h.bus, 156.25e6);

    MagneticProbe probe(0.5);
    gate.scheduleEvent({gate.roundCycles() + 1, probe.apply(h.bus),
                        "probe on"});
    gate.scheduleEvent({10 * gate.roundCycles(), h.bus, "probe off"});

    uint64_t cycle = 0;
    bool saw_untrusted = false;
    for (; cycle < 40 * gate.roundCycles(); ++cycle) {
        gate.tick(cycle);
        if (!h.ctrl.busTrusted())
            saw_untrusted = true;
    }
    EXPECT_TRUE(saw_untrusted);
    EXPECT_TRUE(h.ctrl.busTrusted());  // recovered by the horizon
}

TEST(DivotGate, EventsAppliedInCycleOrder)
{
    Harness h;
    DivotGate gate(h.proto, h.ctrl, h.sdram, h.bus, 156.25e6);
    TransmissionLine a = Harness::fabBus(101);
    a.setName("a");
    TransmissionLine b = Harness::fabBus(102);
    b.setName("b");
    // Schedule out of order.
    gate.scheduleEvent({500, b, "second"});
    gate.scheduleEvent({100, a, "first"});
    gate.tick(200);
    EXPECT_EQ(gate.currentBus().name(), "a");
    gate.tick(600);
    EXPECT_EQ(gate.currentBus().name(), "b");
}

TEST(DivotGate, BadClockFatal)
{
    Harness h;
    EXPECT_DEATH(
        DivotGate(h.proto, h.ctrl, h.sdram, h.bus, 0.0), "clock");
}

} // namespace
} // namespace divot
