/**
 * @file
 * Tests for analog-to-probability conversion math: mixture CDF/PDF,
 * reconstruction inverse property (Eq. 2), the fast inverse table,
 * and the PDM dynamic-range widening claim (Fig. 4).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "itdr/apc.hh"
#include "util/math.hh"

namespace divot {
namespace {

TEST(ApcMixtureCdf, SingleLevelIsPlainPhi)
{
    const std::vector<double> levels{0.0};
    EXPECT_NEAR(apcMixtureCdf(0.0, levels, 1e-3), 0.5, 1e-12);
    EXPECT_NEAR(apcMixtureCdf(1e-3, levels, 1e-3), normalCdf(1.0),
                1e-12);
}

TEST(ApcMixtureCdf, MonotoneForAnyLevels)
{
    const std::vector<double> levels{-2e-3, 0.0, 1e-3, 3e-3};
    double prev = -1.0;
    for (double v = -10e-3; v <= 10e-3; v += 1e-4) {
        const double p = apcMixtureCdf(v, levels, 0.5e-3);
        EXPECT_GE(p, prev);
        prev = p;
    }
    EXPECT_NEAR(apcMixtureCdf(100e-3, levels, 0.5e-3), 1.0, 1e-9);
    EXPECT_NEAR(apcMixtureCdf(-100e-3, levels, 0.5e-3), 0.0, 1e-9);
}

TEST(ApcMixturePdf, IsDerivativeOfCdf)
{
    const std::vector<double> levels{-1e-3, 1e-3};
    const double sigma = 0.7e-3;
    const double h = 1e-8;
    for (double v = -4e-3; v <= 4e-3; v += 0.5e-3) {
        const double numeric =
            (apcMixtureCdf(v + h, levels, sigma) -
             apcMixtureCdf(v - h, levels, sigma)) / (2.0 * h);
        EXPECT_NEAR(apcMixturePdf(v, levels, sigma), numeric,
                    1e-4 * apcMixturePdf(v, levels, sigma) + 1e-9);
    }
}

TEST(ApcReconstruct, SingleLevelClosedForm)
{
    const std::vector<double> levels{2e-3};
    const double sigma = 1e-3;
    // Eq. 2: V = Vref + sigma * Phi^{-1}(p).
    EXPECT_NEAR(apcReconstruct(0.5, levels, sigma), 2e-3, 1e-9);
    EXPECT_NEAR(apcReconstruct(normalCdf(1.5), levels, sigma),
                2e-3 + 1.5e-3, 1e-8);
}

/** Roundtrip: reconstruct(cdf(v)) == v within the linear range. */
class ApcRoundtrip : public ::testing::TestWithParam<double>
{
};

TEST_P(ApcRoundtrip, MixtureInverse)
{
    const double v = GetParam();
    const std::vector<double> levels{-4e-3, -2e-3, 0.0, 2e-3, 4e-3};
    const double sigma = 1e-3;
    const double p = apcMixtureCdf(v, levels, sigma);
    EXPECT_NEAR(apcReconstruct(p, levels, sigma), v, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    VoltageSweep, ApcRoundtrip,
    ::testing::Values(-5e-3, -3e-3, -1e-3, -1e-4, 0.0, 1e-4, 1e-3,
                      3e-3, 5e-3));

TEST(ApcReconstruct, SaturatedProbabilityStaysFinite)
{
    const std::vector<double> levels{0.0};
    EXPECT_TRUE(std::isfinite(apcReconstruct(0.0, levels, 1e-3)));
    EXPECT_TRUE(std::isfinite(apcReconstruct(1.0, levels, 1e-3)));
    const std::vector<double> multi{-1e-3, 1e-3};
    EXPECT_TRUE(std::isfinite(apcReconstruct(1.0, multi, 1e-3)));
}

TEST(ApcInverseTable, MatchesBisectionReconstruction)
{
    const std::vector<double> levels{-3e-3, -1e-3, 1e-3, 3e-3};
    const double sigma = 0.8e-3;
    ApcInverseTable table(levels, sigma, 4096);
    for (double v = -4e-3; v <= 4e-3; v += 0.37e-3) {
        const double p = apcMixtureCdf(v, levels, sigma);
        EXPECT_NEAR(table.reconstruct(p),
                    apcReconstruct(p, levels, sigma), 2e-6);
    }
}

TEST(ApcInverseTable, ClampsAtRails)
{
    const std::vector<double> levels{0.0};
    ApcInverseTable table(levels, 1e-3);
    EXPECT_DOUBLE_EQ(table.reconstruct(0.0), table.voltageLo());
    EXPECT_DOUBLE_EQ(table.reconstruct(1.0), table.voltageHi());
}

TEST(ApcLinearRegion, SingleLevelIsAboutTwoSigma)
{
    // The paper: "APC is most effective within 2 sigma".
    const std::vector<double> levels{0.0};
    const double sigma = 1e-3;
    const double width = apcLinearRegionWidth(levels, sigma, 0.6);
    EXPECT_NEAR(width, 2.0 * sigma, 0.3 * sigma);
}

TEST(ApcLinearRegion, PdmWidensDynamicRange)
{
    // Fig. 4's claim: multiple reference levels widen the linear
    // region far beyond a single level.
    const double sigma = 1e-3;
    const std::vector<double> one{0.0};
    std::vector<double> five;
    for (int i = -2; i <= 2; ++i)
        five.push_back(i * 2e-3);
    const double w1 = apcLinearRegionWidth(one, sigma, 0.5);
    const double w5 = apcLinearRegionWidth(five, sigma, 0.5);
    EXPECT_GT(w5, 3.0 * w1);
}

TEST(ApcLinearRegion, GrowsWithLevelCountAtFixedSpacing)
{
    // Adding reference levels at a fixed (<= 2 sigma) spacing extends
    // the linear span roughly level by level — the PDM scaling law.
    const double sigma = 1e-3;
    double prev = 0.0;
    for (int n : {1, 3, 5, 9}) {
        std::vector<double> levels;
        for (int i = 0; i < n; ++i)
            levels.push_back((i - (n - 1) / 2.0) * 1.5e-3);
        const double w = apcLinearRegionWidth(levels, sigma, 0.5);
        EXPECT_GT(w, prev);
        prev = w;
    }
}

TEST(ApcDeath, BadArguments)
{
    const std::vector<double> empty;
    const std::vector<double> ok{0.0};
    EXPECT_DEATH(apcMixtureCdf(0.0, empty, 1e-3), "levels");
    EXPECT_DEATH(apcMixtureCdf(0.0, ok, 0.0), "sigma");
    EXPECT_DEATH(apcReconstruct(0.5, empty, 1e-3), "levels");
    EXPECT_DEATH(ApcInverseTable(ok, -1.0), "sigma");
}

} // namespace
} // namespace divot
