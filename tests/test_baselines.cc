/**
 * @file
 * Tests for the related-work baseline models (Section V): each model
 * must reproduce the published technique's strengths *and* blind
 * spots.
 */

#include <gtest/gtest.h>

#include "baselines/board_puf.hh"
#include "baselines/dc_resistance.hh"
#include "baselines/pad.hh"
#include "baselines/vna.hh"
#include "txline/txline.hh"

namespace divot {
namespace {

constexpr std::size_t kTrials = 4000;

TEST(Pad, DetectsContactProbeDuringSurveillance)
{
    ProbeAttemptDetector pad;
    Rng rng(1);
    const double p = pad.detectProbability(AttackKind::ContactProbe,
                                           1.0, kTrials, rng);
    // Caps shift is huge (10 % of wire C) — detection is limited by
    // the surveillance duty cycle, not by sensitivity.
    EXPECT_NEAR(p, pad.traits().busTimeOverhead, 0.02);
}

TEST(Pad, BlindToEmProbe)
{
    ProbeAttemptDetector pad;
    Rng rng(2);
    const double p = pad.detectProbability(AttackKind::EmProbe, 1.0,
                                           kTrials, rng);
    EXPECT_LT(p, 0.01);
}

TEST(Pad, NotConcurrentAndCostsBusTime)
{
    const auto t = ProbeAttemptDetector().traits();
    EXPECT_FALSE(t.runtimeConcurrent);
    EXPECT_TRUE(t.integrable);
    EXPECT_GT(t.busTimeOverhead, 0.0);
}

TEST(DcMonitor, DetectsWireTapWhenMeasuring)
{
    DcResistanceMonitor dc;
    Rng rng(3);
    const double p = dc.detectProbability(AttackKind::WireTap, 1.0,
                                          kTrials, rng);
    EXPECT_GT(p, 0.5 * dc.traits().busTimeOverhead);
    EXPECT_LE(p, dc.traits().busTimeOverhead + 0.02);
}

TEST(DcMonitor, BlindToEmProbe)
{
    DcResistanceMonitor dc;
    Rng rng(4);
    EXPECT_LT(dc.detectProbability(AttackKind::EmProbe, 1.0, kTrials,
                                   rng),
              0.005);
}

TEST(DcMonitor, CannotIdentify)
{
    EXPECT_LT(DcResistanceMonitor().identificationEer(), 0.0);
    EXPECT_LT(ProbeAttemptDetector().identificationEer(), 0.0);
}

TEST(BoardPuf, OfflineMissesTransientAttacks)
{
    BoardImpedancePuf puf;
    Rng rng(5);
    EXPECT_DOUBLE_EQ(puf.detectProbability(AttackKind::EmProbe, 1.0,
                                           100, rng),
                     0.0);
    EXPECT_DOUBLE_EQ(puf.detectProbability(AttackKind::ContactProbe,
                                           1.0, 100, rng),
                     0.0);
}

TEST(BoardPuf, CatchesFullModuleSwapAtAudit)
{
    BoardImpedancePuf puf;
    Rng rng(6);
    const double p = puf.detectProbability(AttackKind::ModuleSwap, 1.0,
                                           kTrials, rng);
    EXPECT_GT(p, 0.9);
}

TEST(BoardPuf, IdentificationEerWorseThanDivot)
{
    // Paper: "low identification performance compared to ... Tx-line
    // PUF presented here". DIVOT's Fig. 7 EER is < 6e-4.
    const double eer = BoardImpedancePuf().identificationEer();
    EXPECT_GT(eer, 1e-3);
    EXPECT_LT(eer, 0.2);
}

TEST(Vna, GoldStandardButOffline)
{
    VnaIipReference vna;
    const auto t = vna.traits();
    EXPECT_FALSE(t.runtimeConcurrent);
    EXPECT_FALSE(t.integrable);
    EXPECT_DOUBLE_EQ(t.busTimeOverhead, 1.0);
    Rng rng(7);
    EXPECT_DOUBLE_EQ(vna.detectProbability(AttackKind::EmProbe, 1.0,
                                           10, rng),
                     0.0);
    EXPECT_DOUBLE_EQ(vna.detectProbability(AttackKind::WireTap, 1.0,
                                           10, rng),
                     1.0);
}

TEST(Vna, MeasurementTracksIdealProfile)
{
    VnaIipReference vna;
    Rng rng(8);
    TransmissionLine line({50.0, 55.0, 50.0, 45.0, 50.0}, 1e-3, 1.5e8,
                          50.0, 60.0, 0.0, "v");
    const Waveform m = vna.measure(line, rng);
    // Peak should be the load echo (biggest discontinuity).
    EXPECT_EQ(m.peakIndex(), 2u * line.segments());
}

TEST(AttackKindNames, Printable)
{
    EXPECT_STREQ(attackKindName(AttackKind::ContactProbe),
                 "contact-probe");
    EXPECT_STREQ(attackKindName(AttackKind::EmProbe), "em-probe");
    EXPECT_STREQ(attackKindName(AttackKind::WireTap), "wire-tap");
    EXPECT_STREQ(attackKindName(AttackKind::ModuleSwap),
                 "module-swap");
}

} // namespace
} // namespace divot
