/**
 * @file
 * Tests for the crash-safe sharded EnrollmentDb: codec roundtrips,
 * dual-bank recovery, write-ahead journal replay, the power-cut
 * matrix (a crash at every commit point leaves either the old or the
 * new state reachable, never junk), scrub repair, and the stable
 * store.* telemetry counters.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

#include "fault/fault.hh"
#include "store/codec.hh"
#include "store/enrollment_db.hh"
#include "store/io.hh"
#include "telemetry/telemetry.hh"
#include "util/rng.hh"

namespace divot::store {
namespace {

Fingerprint
testFingerprint(double seed)
{
    Waveform raw(1e-12, {seed, seed + 1.0, seed + 2.0, seed * 0.5});
    Waveform residual(1e-12, {0.5, -0.5, 0.5, -0.5});
    return Fingerprint::fromParts(raw, residual,
                                  "fp" + std::to_string(seed));
}

EnrollmentRecord
testRecord(const std::string &id, double seed)
{
    EnrollmentRecord rec;
    rec.id = id;
    rec.fp = testFingerprint(seed);
    rec.nominal = Waveform(1e-12, {seed, seed});
    rec.generation = 1;
    return rec;
}

/**
 * Fresh empty db directory under the test temp dir. Suffixed with the
 * pid: parameterized instances run as concurrent ctest entries, and a
 * shared path would let one instance's cleanup race another's replay.
 */
std::string
freshDir(const char *name)
{
    const std::string dir = std::string(::testing::TempDir()) + name +
        "_" + std::to_string(static_cast<long>(::getpid()));
    ensureDir(dir);
    for (unsigned s = 0; s < 64; ++s) {
        const std::string shard =
            dir + "/shard-" + std::to_string(s) + ".bin";
        removeFile(shard);
        removeFile(shard + ".tmp");
        removeFile(shard + ".corrupt");
    }
    removeFile(dir + "/journal.wal");
    return dir;
}

EnrollmentDbConfig
smallConfig(const std::string &dir)
{
    EnrollmentDbConfig cfg;
    cfg.directory = dir;
    cfg.shards = 4;
    cfg.overlayFlushRecords = 4;
    return cfg;
}

bool
sameRecord(const EnrollmentRecord &a, const EnrollmentRecord &b)
{
    return a.id == b.id &&
        a.fp.raw().samples() == b.fp.raw().samples() &&
        a.fp.residual().samples() == b.fp.residual().samples() &&
        a.nominal.samples() == b.nominal.samples() &&
        a.flags == b.flags && a.generation == b.generation;
}

// --------------------------------------------------------------------
// Codec

TEST(StoreCodec, RecordBodyRoundtrip)
{
    const EnrollmentRecord rec = testRecord("dimm0.clk", 3.0);
    EnrollmentRecord back;
    ASSERT_TRUE(decodeRecordBody(encodeRecordBody(rec), back));
    EXPECT_TRUE(sameRecord(rec, back));
}

TEST(StoreCodec, DecodeRejectsEmptyRaw)
{
    EnrollmentRecord rec = testRecord("x", 1.0);
    rec.fp = Fingerprint::fromParts(Waveform(), Waveform(), "empty");
    EnrollmentRecord back;
    EXPECT_FALSE(decodeRecordBody(encodeRecordBody(rec), back));
}

TEST(StoreCodec, ShardImageRoundtrip)
{
    std::map<std::string, EnrollmentRecord> records;
    for (int i = 0; i < 5; ++i) {
        const std::string id = "ch" + std::to_string(i);
        records[id] = testRecord(id, i);
    }
    const std::vector<char> image = buildShardImage(records);
    std::map<std::string, EnrollmentRecord> back;
    const ShardParseReport report = parseShardImage(image, back);
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.bankUsed, 0);
    EXPECT_FALSE(report.fellBack);
    ASSERT_EQ(back.size(), records.size());
    for (const auto &[id, rec] : records)
        EXPECT_TRUE(sameRecord(rec, back.at(id)));
}

TEST(StoreCodec, SingleByteCorruptionAlwaysRecovers)
{
    std::map<std::string, EnrollmentRecord> records;
    for (int i = 0; i < 3; ++i) {
        const std::string id = "wire" + std::to_string(i);
        records[id] = testRecord(id, i + 10);
    }
    const std::vector<char> image = buildShardImage(records);
    // Any single flipped byte damages at most one bank: the parse
    // must still recover every record.
    for (std::size_t pos = 0; pos < image.size();
         pos += std::max<std::size_t>(1, image.size() / 97)) {
        std::vector<char> bad = image;
        bad[pos] = static_cast<char>(bad[pos] ^ 0x41);
        std::map<std::string, EnrollmentRecord> back;
        const ShardParseReport report = parseShardImage(bad, back);
        ASSERT_TRUE(report.ok) << "byte " << pos;
        ASSERT_EQ(back.size(), records.size()) << "byte " << pos;
        for (const auto &[id, rec] : records)
            EXPECT_TRUE(sameRecord(rec, back.at(id)))
                << "byte " << pos;
    }
}

TEST(StoreCodec, FindShardRecordStatuses)
{
    std::map<std::string, EnrollmentRecord> records;
    records["aa"] = testRecord("aa", 1);
    records["bb"] = testRecord("bb", 2);
    const std::vector<char> image = buildShardImage(records);

    EnrollmentRecord out;
    EXPECT_EQ(findShardRecord(image, "aa", out), 1);
    EXPECT_TRUE(sameRecord(records["aa"], out));
    EXPECT_EQ(findShardRecord(image, "zz", out), 0);
}

TEST(StoreCodec, ChannelHashIsStable)
{
    // Pinned values: shard routing must never change across builds
    // or platforms, or existing databases would scatter.
    EXPECT_EQ(channelHash(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(channelHash("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(channelHash("ch0"), channelHash(std::string("ch0")));
    EXPECT_NE(channelHash("ch0"), channelHash("ch1"));
}

// --------------------------------------------------------------------
// EnrollmentDb basics

TEST(EnrollmentDb, PutGetEraseRoundtrip)
{
    const std::string dir = freshDir("db_basic");
    EnrollmentDb db(smallConfig(dir));
    ASSERT_TRUE(db.open());

    const EnrollmentRecord rec = testRecord("dimm0.clk", 7.0);
    EXPECT_TRUE(db.put(rec));

    EnrollmentRecord out;
    EXPECT_EQ(db.get("dimm0.clk", out), DbGetStatus::Ok);
    EXPECT_TRUE(sameRecord(rec, out));
    EXPECT_EQ(db.get("ghost", out), DbGetStatus::Missing);

    EXPECT_TRUE(db.erase("dimm0.clk"));
    EXPECT_EQ(db.get("dimm0.clk", out), DbGetStatus::Missing);
}

TEST(EnrollmentDb, OpenFailsOnMissingDirectory)
{
    EnrollmentDbConfig cfg;
    cfg.directory =
        std::string(::testing::TempDir()) + "does_not_exist_xyz";
    EnrollmentDb db(cfg);
    EXPECT_FALSE(db.open());
}

TEST(EnrollmentDb, JournalReplayRecoversUnflushedMutations)
{
    const std::string dir = freshDir("db_replay");
    const EnrollmentRecord rec = testRecord("ch.a", 1.0);
    {
        EnrollmentDb db(smallConfig(dir));
        ASSERT_TRUE(db.open());
        EXPECT_TRUE(db.put(rec));
        // No checkpoint, overlay below the flush threshold: the only
        // durable copy lives in the journal.
    }
    EnrollmentDb db(smallConfig(dir));
    ASSERT_TRUE(db.open());
    EXPECT_EQ(db.replayedEntries(), 1u);
    EnrollmentRecord out;
    EXPECT_EQ(db.get("ch.a", out), DbGetStatus::Ok);
    EXPECT_TRUE(sameRecord(rec, out));
}

TEST(EnrollmentDb, CheckpointFlushesAndTruncatesJournal)
{
    const std::string dir = freshDir("db_ckpt");
    EnrollmentDb db(smallConfig(dir));
    ASSERT_TRUE(db.open());
    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(db.put(
            testRecord("ch" + std::to_string(i), i)));
    EXPECT_TRUE(db.checkpoint());
    EXPECT_EQ(fileSize(db.journalPath()), 0);

    // A fresh handle reads everything from shard images alone.
    EnrollmentDb db2(smallConfig(dir));
    ASSERT_TRUE(db2.open());
    EXPECT_EQ(db2.replayedEntries(), 0u);
    for (int i = 0; i < 6; ++i) {
        EnrollmentRecord out;
        EXPECT_EQ(db2.get("ch" + std::to_string(i), out),
                  DbGetStatus::Ok);
    }
}

TEST(EnrollmentDb, SetFlagsPersists)
{
    const std::string dir = freshDir("db_flags");
    EnrollmentDb db(smallConfig(dir));
    ASSERT_TRUE(db.open());
    ASSERT_TRUE(db.put(testRecord("q.ch", 2.0)));
    EXPECT_TRUE(db.setFlags("q.ch", kRecordQuarantined));
    EXPECT_FALSE(db.setFlags("ghost", kRecordQuarantined));

    EnrollmentDb db2(smallConfig(dir));
    ASSERT_TRUE(db2.open());
    EnrollmentRecord out;
    ASSERT_EQ(db2.get("q.ch", out), DbGetStatus::Ok);
    EXPECT_EQ(out.flags, kRecordQuarantined);
}

TEST(EnrollmentDb, IdsMergesShardsAndOverlays)
{
    const std::string dir = freshDir("db_ids");
    EnrollmentDb db(smallConfig(dir));
    ASSERT_TRUE(db.open());
    for (int i = 0; i < 7; ++i)
        ASSERT_TRUE(db.put(testRecord("w" + std::to_string(i), i)));
    ASSERT_TRUE(db.erase("w3"));
    std::vector<std::string> ids = db.ids();
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids.size(), 6u);
    EXPECT_TRUE(std::find(ids.begin(), ids.end(), "w3") == ids.end());
}

// --------------------------------------------------------------------
// Crash matrix: one power cut at every commit point; after recovery
// the record is either fully present or fully absent — never junk.

class EnrollmentDbCrash
    : public ::testing::TestWithParam<StorageCrashPoint>
{
};

TEST_P(EnrollmentDbCrash, PowerCutLeavesOldOrNewState)
{
    const StorageCrashPoint point = GetParam();
    const std::string dir = freshDir("db_crash");

    // Seed one committed record, then crash the second put.
    FaultPlan plan;
    plan.storageCrash(1, point);
    const FaultInjector injector(plan, Rng(99));

    const EnrollmentRecord first = testRecord("stable.ch", 1.0);
    const EnrollmentRecord second = testRecord("victim.ch", 2.0);
    bool putReportedDurable = false;
    {
        EnrollmentDb db(smallConfig(dir));
        db.attachFaultInjector(&injector);
        ASSERT_TRUE(db.open());
        ASSERT_TRUE(db.put(first));
        putReportedDurable = db.put(second);
        if (point == StorageCrashPoint::AfterCommit)
            EXPECT_TRUE(putReportedDurable);
        else
            EXPECT_FALSE(putReportedDurable);
        EXPECT_FALSE(db.alive());
        // A dead handle refuses everything.
        EnrollmentRecord out;
        EXPECT_FALSE(db.put(testRecord("late.ch", 3.0)));
        EXPECT_FALSE(db.checkpoint());
    }

    // Recovery: fresh handle on the same directory.
    EnrollmentDb db(smallConfig(dir));
    ASSERT_TRUE(db.open());
    EnrollmentRecord out;
    ASSERT_EQ(db.get("stable.ch", out), DbGetStatus::Ok)
        << "committed record lost";
    EXPECT_TRUE(sameRecord(first, out));

    const DbGetStatus victim = db.get("victim.ch", out);
    switch (point) {
    case StorageCrashPoint::BeforeWrite:
        EXPECT_EQ(victim, DbGetStatus::Missing);
        break;
    case StorageCrashPoint::AfterJournal:
    case StorageCrashPoint::BeforeCommit:
    case StorageCrashPoint::AfterCommit:
        // The journal entry was durable before the cut: replay must
        // recover the mutation in full.
        ASSERT_EQ(victim, DbGetStatus::Ok);
        EXPECT_TRUE(sameRecord(second, out));
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPoints, EnrollmentDbCrash,
    ::testing::Values(StorageCrashPoint::BeforeWrite,
                      StorageCrashPoint::AfterJournal,
                      StorageCrashPoint::BeforeCommit,
                      StorageCrashPoint::AfterCommit));

TEST(EnrollmentDbFaults, TornJournalAppendDiscardsOnlyTheTail)
{
    const std::string dir = freshDir("db_torn");
    FaultPlan plan;
    plan.storageTornWrite(2, 0.3);
    const FaultInjector injector(plan, Rng(5));

    {
        EnrollmentDb db(smallConfig(dir));
        db.attachFaultInjector(&injector);
        ASSERT_TRUE(db.open());
        ASSERT_TRUE(db.put(testRecord("a.ch", 1.0)));
        ASSERT_TRUE(db.put(testRecord("b.ch", 2.0)));
        EXPECT_FALSE(db.put(testRecord("c.ch", 3.0))); // torn
        EXPECT_FALSE(db.alive());
    }

    EnrollmentDb db(smallConfig(dir));
    ASSERT_TRUE(db.open());
    EXPECT_EQ(db.replayedEntries(), 2u);
    EnrollmentRecord out;
    EXPECT_EQ(db.get("a.ch", out), DbGetStatus::Ok);
    EXPECT_EQ(db.get("b.ch", out), DbGetStatus::Ok);
    EXPECT_EQ(db.get("c.ch", out), DbGetStatus::Missing);
    // The torn tail was truncated: the journal frames cleanly again.
    EXPECT_TRUE(db.put(testRecord("c.ch", 3.0)));
}

TEST(EnrollmentDbFaults, BitRotRecoversThroughSurvivingBank)
{
    const std::string dir = freshDir("db_rot");
    EnrollmentDbConfig cfg = smallConfig(dir);
    cfg.shards = 1; // all damage lands in one shard image
    {
        EnrollmentDb db(cfg);
        ASSERT_TRUE(db.open());
        for (int i = 0; i < 4; ++i)
            ASSERT_TRUE(db.put(
                testRecord("rot" + std::to_string(i), i)));
        ASSERT_TRUE(db.checkpoint());
    }

    // Rot a couple of bits after the image exists (the put routes the
    // damage at the shard file). Stuck-at bits can be no-ops when the
    // forced level matches, so remember the pristine image and assert
    // real damage landed.
    std::vector<char> pristine;
    {
        EnrollmentDb peek(cfg);
        ASSERT_TRUE(readFile(peek.shardPath(0), pristine));
    }
    FaultPlan plan;
    plan.storageBitRot(0, 6, 3.0);
    const FaultInjector injector(plan, Rng(11));
    EnrollmentDb db(cfg);
    db.attachFaultInjector(&injector);
    ASSERT_TRUE(db.open());
    ASSERT_TRUE(db.put(testRecord("extra", 9.0)));
    std::vector<char> rotted;
    ASSERT_TRUE(readFile(db.shardPath(0), rotted));
    ASSERT_NE(pristine, rotted);

    // Every original record still reads back: localized rot damages
    // at most one bank per record.
    for (int i = 0; i < 4; ++i) {
        EnrollmentRecord out;
        EXPECT_EQ(db.get("rot" + std::to_string(i), out),
                  DbGetStatus::Ok);
    }

    // Scrub rewrites a pristine image when anything was damaged.
    const ScrubResult scrub = db.scrubShard(0);
    EXPECT_TRUE(scrub.scanned);
    EXPECT_TRUE(scrub.lostIds.empty());
    EXPECT_EQ(scrub.lostUnnamed, 0u);

    std::vector<char> image;
    ASSERT_TRUE(readFile(db.shardPath(0), image));
    std::map<std::string, EnrollmentRecord> back;
    const ShardParseReport report = parseShardImage(image, back);
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.bankUsed, 0);
    EXPECT_FALSE(report.fellBack);
    EXPECT_EQ(back.size(), 5u);
}

TEST(EnrollmentDbFaults, TruncationLosesTailNeverJunk)
{
    const std::string dir = freshDir("db_trunc");
    EnrollmentDbConfig cfg = smallConfig(dir);
    cfg.shards = 1;
    std::vector<std::string> ids;
    {
        EnrollmentDb db(cfg);
        ASSERT_TRUE(db.open());
        for (int i = 0; i < 6; ++i) {
            ids.push_back("t" + std::to_string(i));
            ASSERT_TRUE(db.put(testRecord(ids.back(), i)));
        }
        ASSERT_TRUE(db.checkpoint());
    }

    // Chop the image down to 40%: bank B is gone, the tail of bank A
    // with it.
    const std::string shard =
        EnrollmentDb(cfg).shardPath(0);
    const int64_t size = fileSize(shard);
    ASSERT_GT(size, 0);
    ASSERT_TRUE(truncateFile(shard, static_cast<uint64_t>(
        0.4 * static_cast<double>(size))));

    EnrollmentDb db(cfg);
    ASSERT_TRUE(db.open());
    std::size_t okCount = 0;
    for (const std::string &id : ids) {
        EnrollmentRecord out;
        const DbGetStatus st = db.get(id, out);
        if (st == DbGetStatus::Ok) {
            ++okCount;
            // Whatever survives must verify byte for byte.
            EXPECT_EQ(out.id, id);
            EXPECT_TRUE(out.fp.valid());
        } else {
            EXPECT_NE(st, DbGetStatus::Ok);
        }
    }
    EXPECT_LT(okCount, ids.size()); // something was genuinely lost

    // Scrub drops the lost records and reports them; the rewritten
    // image then reads strictly clean.
    const ScrubResult scrub = db.scrubShard(0);
    EXPECT_TRUE(scrub.scanned);
    EXPECT_EQ(scrub.lostIds.size() + scrub.lostUnnamed +
                  okCount,
              ids.size());

    std::vector<char> image;
    ASSERT_TRUE(readFile(shard, image));
    std::map<std::string, EnrollmentRecord> back;
    const ShardParseReport report = parseShardImage(image, back);
    EXPECT_TRUE(report.ok);
    EXPECT_FALSE(report.fellBack);
    EXPECT_EQ(back.size(), okCount);
}

TEST(EnrollmentDb, ScrubStepWalksShardsRoundRobin)
{
    const std::string dir = freshDir("db_scrubstep");
    EnrollmentDb db(smallConfig(dir));
    ASSERT_TRUE(db.open());
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(db.put(testRecord("s" + std::to_string(i), i)));
    ASSERT_TRUE(db.checkpoint());
    for (unsigned s = 0; s < db.config().shards; ++s) {
        const ScrubResult r = db.scrubStep();
        EXPECT_TRUE(r.lostIds.empty());
    }
}

TEST(EnrollmentDb, ImportLegacyImage)
{
    // A v3 shard image imports through the same entry point.
    std::map<std::string, EnrollmentRecord> records;
    records["imp0"] = testRecord("imp0", 1);
    records["imp1"] = testRecord("imp1", 2);
    const std::vector<char> image = buildShardImage(records);

    const std::string dir = freshDir("db_import");
    EnrollmentDb db(smallConfig(dir));
    ASSERT_TRUE(db.open());
    EXPECT_EQ(db.importImage(image), 2u);
    EnrollmentRecord out;
    EXPECT_EQ(db.get("imp0", out), DbGetStatus::Ok);
    EXPECT_TRUE(sameRecord(records["imp0"], out));

    EXPECT_EQ(db.importImage(std::vector<char>(16, 'x')), 0u);
}

TEST(StoreCodec, RottedLengthFieldNeverOverflows)
{
    std::map<std::string, EnrollmentRecord> records;
    records["aa"] = testRecord("aa", 1);
    records["bb"] = testRecord("bb", 2);
    std::vector<char> image = buildShardImage(records);
    const std::size_t payloadLen =
        (image.size() - 2 * kBankHeaderSize) / 2;

    // Stuck-at-1 rot across bank A's first bodyLen field: the value
    // reads back near 2^64, where `body_len + 8` would wrap past the
    // frame bound. Bank B still serves every record.
    for (int i = 0; i < 8; ++i)
        image[kBankHeaderSize + 8 + i] = static_cast<char>(0xff);
    EnrollmentRecord out;
    EXPECT_EQ(findShardRecord(image, "aa", out), 1);
    EXPECT_TRUE(sameRecord(records["aa"], out));
    std::map<std::string, EnrollmentRecord> back;
    EXPECT_TRUE(parseShardImage(image, back).ok);
    EXPECT_EQ(back.size(), 2u);

    // Same rot in bank B's copy too: the lookup must fail cleanly as
    // damage (never walk past the buffer, never return junk).
    for (int i = 0; i < 8; ++i)
        image[kBankHeaderSize + payloadLen + 8 + i] =
            static_cast<char>(0xff);
    EXPECT_EQ(findShardRecord(image, "aa", out), -1);
    back.clear();
    const ShardParseReport report = parseShardImage(image, back);
    EXPECT_TRUE(back.empty());
    EXPECT_FALSE(report.unrecoverable.empty() && report.ok &&
                 report.records > 0);
}

TEST(EnrollmentDbFaults, RottedJournalLengthIsTornTail)
{
    const std::string dir = freshDir("db_rotlen");
    {
        EnrollmentDb db(smallConfig(dir));
        ASSERT_TRUE(db.open());
        ASSERT_TRUE(db.put(testRecord("keep.ch", 1.0)));
    }

    // Hand-append an entry whose length field rotted to all-ones
    // (0x4C414A44 is the journal frame magic). The huge length must
    // read as a torn tail, not wrap the bounds check and misalign the
    // rest of the walk.
    std::vector<char> evil;
    putU64(evil, (static_cast<uint64_t>(1) << 32) | 0x4C414A44u);
    putU64(evil, 1);     // seq
    putU64(evil, ~0ull); // rotted bodyLen
    evil.insert(evil.end(), 32, 'z');
    ASSERT_TRUE(appendFile(dir + "/journal.wal", evil));

    EnrollmentDb db(smallConfig(dir));
    ASSERT_TRUE(db.open());
    EXPECT_EQ(db.replayedEntries(), 1u);
    EnrollmentRecord out;
    EXPECT_EQ(db.get("keep.ch", out), DbGetStatus::Ok);
    // The rotted tail was truncated: appends frame cleanly again.
    EXPECT_TRUE(db.put(testRecord("new.ch", 2.0)));
    EnrollmentDb db2(smallConfig(dir));
    ASSERT_TRUE(db2.open());
    EXPECT_EQ(db2.get("keep.ch", out), DbGetStatus::Ok);
    EXPECT_EQ(db2.get("new.ch", out), DbGetStatus::Ok);
}

TEST(EnrollmentDb, ScrubNeverWipesUnreadableShard)
{
    const std::string dir = freshDir("db_unreadable");
    EnrollmentDbConfig cfg = smallConfig(dir);
    cfg.shards = 1;
    EnrollmentDb db(cfg);
    ASSERT_TRUE(db.open());
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(db.put(testRecord("u" + std::to_string(i), i)));
    ASSERT_TRUE(db.checkpoint());

    // Wreck the whole image: nothing recoverable, and no way to even
    // count what was lost.
    std::vector<char> bytes;
    ASSERT_TRUE(readFile(db.shardPath(0), bytes));
    const std::vector<char> garbage(bytes.size(), 'x');
    ASSERT_TRUE(atomicWriteFile(db.shardPath(0), garbage));

    // Scrub must refuse the rewrite (it would silently wipe the
    // shard), flag the wholesale loss, and leave the bytes in place.
    const ScrubResult scrub = db.scrubShard(0);
    EXPECT_TRUE(scrub.scanned);
    EXPECT_TRUE(scrub.unreadable);
    EXPECT_FALSE(scrub.repaired);
    EXPECT_EQ(scrub.shard, 0u);
    std::vector<char> after;
    ASSERT_TRUE(readFile(db.shardPath(0), after));
    EXPECT_EQ(after, garbage);
    // Lookups report damage — never junk, never "provably absent".
    EnrollmentRecord out;
    EXPECT_EQ(db.get("u0", out), DbGetStatus::Unrecoverable);

    // An overlay flush over the unreadable image preserves the bytes
    // aside as .corrupt instead of destroying them.
    ASSERT_TRUE(db.put(testRecord("fresh", 9.0)));
    ASSERT_TRUE(db.checkpoint());
    std::vector<char> kept;
    ASSERT_TRUE(readFile(db.shardPath(0) + ".corrupt", kept));
    EXPECT_EQ(kept, garbage);
    EXPECT_EQ(db.get("fresh", out), DbGetStatus::Ok);
}

TEST(EnrollmentDbFaults, AfterCommitCrashStillCountsThePut)
{
    const std::string dir = freshDir("db_acct");
    Telemetry telemetry;
    FaultPlan plan;
    plan.storageCrash(0, StorageCrashPoint::AfterCommit);
    const FaultInjector injector(plan, Rng(3));
    EnrollmentDb db(smallConfig(dir));
    db.attachTelemetry(&telemetry);
    db.attachFaultInjector(&injector);
    ASSERT_TRUE(db.open());
    // The put is durable — it must land in store.puts even though the
    // handle dies at AfterCommit.
    EXPECT_TRUE(db.put(testRecord("acct.ch", 1.0)));
    EXPECT_FALSE(db.alive());

    const auto counters = telemetry.registry().counters();
    auto value = [&](const std::string &name) -> int64_t {
        for (const auto &c : counters)
            if (c.name == name)
                return static_cast<int64_t>(c.value);
        return -1;
    };
    EXPECT_EQ(value("store.puts"), 1);
    EXPECT_EQ(value("store.crashes"), 1);
}

TEST(EnrollmentDbGroupCommit, CrashBeforeCheckpointReplaysEverything)
{
    // Group commit defers the per-rename directory sync (and, while
    // the journal covers all images, the image data sync) to the
    // checkpoint. A crash anywhere before that checkpoint must still
    // recover every acknowledged put: the journal is the covering
    // copy and replays over whatever image prefix survived.
    const std::string dir = freshDir("db_gc_crash");
    EnrollmentDbConfig cfg = smallConfig(dir);
    cfg.journalGroupCommit = true;
    std::vector<std::string> ids;
    {
        EnrollmentDb db(cfg);
        ASSERT_TRUE(db.open());
        // Enough puts to force several deferred-sync shard flushes.
        for (int i = 0; i < 24; ++i) {
            ids.push_back("gc" + std::to_string(i));
            ASSERT_TRUE(db.put(testRecord(ids.back(), i)));
        }
        EXPECT_GT(fileSize(db.journalPath()), 0);
        // No checkpoint: the handle just dies (simulated power cut
        // with every deferred sync still pending).
    }
    EnrollmentDb db(cfg);
    ASSERT_TRUE(db.open());
    EXPECT_GT(db.replayedEntries(), 0u);
    for (std::size_t i = 0; i < ids.size(); ++i) {
        EnrollmentRecord out;
        EXPECT_EQ(db.get(ids[i], out), DbGetStatus::Ok) << ids[i];
        EXPECT_TRUE(sameRecord(out, testRecord(ids[i], double(i))));
    }
}

TEST(EnrollmentDbGroupCommit, ContentIdenticalToInlineSync)
{
    // The group-commit knob changes when durability is pinned, never
    // what lands on disk: the same mutation sequence must produce the
    // same readable database either way.
    auto drive = [](const std::string &dir, bool group) {
        EnrollmentDbConfig cfg;
        cfg.directory = dir;
        cfg.shards = 4;
        cfg.overlayFlushRecords = 4;
        cfg.journalGroupCommit = group;
        EnrollmentDb db(cfg);
        ASSERT_TRUE(db.open());
        for (int i = 0; i < 16; ++i)
            ASSERT_TRUE(db.put(testRecord("c" + std::to_string(i), i)));
        ASSERT_TRUE(db.erase("c3"));
        ASSERT_TRUE(db.setFlags("c5", 2));
        ASSERT_TRUE(db.checkpoint());
        EXPECT_EQ(fileSize(db.journalPath()), 0);
    };
    const std::string inlineDir = freshDir("db_gc_inline");
    const std::string groupDir = freshDir("db_gc_group");
    drive(inlineDir, false);
    drive(groupDir, true);

    EnrollmentDbConfig a = smallConfig(inlineDir);
    EnrollmentDbConfig b = smallConfig(groupDir);
    EnrollmentDb dbA(a);
    EnrollmentDb dbB(b);
    ASSERT_TRUE(dbA.open());
    ASSERT_TRUE(dbB.open());
    EXPECT_EQ(dbA.ids(), dbB.ids());
    for (const std::string &id : dbA.ids()) {
        EnrollmentRecord ra;
        EnrollmentRecord rb;
        ASSERT_EQ(dbA.get(id, ra), DbGetStatus::Ok);
        ASSERT_EQ(dbB.get(id, rb), DbGetStatus::Ok);
        EXPECT_TRUE(sameRecord(ra, rb)) << id;
    }
    EnrollmentRecord out;
    EXPECT_EQ(dbA.get("c3", out), DbGetStatus::Missing);
    EXPECT_EQ(dbB.get("c3", out), DbGetStatus::Missing);
}

TEST(EnrollmentDbGroupCommit, TornJournalTailStillDiscardedCleanly)
{
    // The held-open journal handle must preserve the torn-tail model:
    // a torn append under group commit is discarded on replay exactly
    // like the open-per-append path.
    const std::string dir = freshDir("db_gc_torn");
    EnrollmentDbConfig cfg = smallConfig(dir);
    cfg.journalGroupCommit = true;
    FaultPlan plan;
    plan.storageTornWrite(2);
    const FaultInjector injector(plan, Rng(5));
    {
        EnrollmentDb db(cfg);
        db.attachFaultInjector(&injector);
        ASSERT_TRUE(db.open());
        ASSERT_TRUE(db.put(testRecord("a.ch", 1.0)));
        ASSERT_TRUE(db.put(testRecord("b.ch", 2.0)));
        EXPECT_FALSE(db.put(testRecord("c.ch", 3.0))); // torn mid-append
        EXPECT_FALSE(db.alive());
    }
    EnrollmentDb db(cfg);
    ASSERT_TRUE(db.open());
    EnrollmentRecord out;
    EXPECT_EQ(db.get("a.ch", out), DbGetStatus::Ok);
    EXPECT_EQ(db.get("b.ch", out), DbGetStatus::Ok);
    EXPECT_EQ(db.get("c.ch", out), DbGetStatus::Missing);
    EXPECT_TRUE(db.put(testRecord("c.ch", 3.0)));
}

TEST(EnrollmentDb, TelemetryCountersAreStable)
{
    const std::string dir = freshDir("db_telemetry");
    Telemetry telemetry;
    EnrollmentDb db(smallConfig(dir));
    db.attachTelemetry(&telemetry);
    ASSERT_TRUE(db.open());
    ASSERT_TRUE(db.put(testRecord("tm.ch", 1.0)));
    EnrollmentRecord out;
    ASSERT_EQ(db.get("tm.ch", out), DbGetStatus::Ok);
    ASSERT_TRUE(db.checkpoint());

    const auto counters = telemetry.registry().counters();
    auto value = [&](const std::string &name) -> int64_t {
        for (const auto &c : counters)
            if (c.name == name)
                return static_cast<int64_t>(c.value);
        return -1;
    };
    EXPECT_EQ(value("store.puts"), 1);
    EXPECT_GE(value("store.gets"), 1);
    EXPECT_EQ(value("store.checkpoints"), 1);
    EXPECT_GE(value("store.journal.entries"), 1);
    EXPECT_EQ(value("store.crashes"), 0);
}

} // namespace
} // namespace divot::store
