/**
 * @file
 * Tests for the directional coupler model.
 */

#include <gtest/gtest.h>

#include "analog/coupler.hh"

namespace divot {
namespace {

TEST(Coupler, ScalesReflectionByCouplingFactor)
{
    Coupler cpl(CouplerParams{0.5, 0.0, 0.0});
    Waveform refl(1.0, {2.0, 4.0});
    Waveform inc(1.0, {100.0, 100.0});
    const Waveform out = cpl.detectorOutput(refl, inc);
    EXPECT_DOUBLE_EQ(out[0], 1.0);
    EXPECT_DOUBLE_EQ(out[1], 2.0);
}

TEST(Coupler, LeakAddsIncidentFraction)
{
    Coupler cpl(CouplerParams{1.0, 0.01, 0.0});
    Waveform refl(1.0, {0.0});
    Waveform inc(1.0, {5.0});
    const Waveform out = cpl.detectorOutput(refl, inc);
    EXPECT_DOUBLE_EQ(out[0], 0.05);
}

TEST(Coupler, ZeroLeakIgnoresIncident)
{
    Coupler cpl(CouplerParams{1.0, 0.0, 0.0});
    Waveform refl(1.0, {1.0});
    Waveform inc(1.0, {1e6});
    EXPECT_DOUBLE_EQ(cpl.detectorOutput(refl, inc)[0], 1.0);
}

TEST(Coupler, SizeMismatchPanics)
{
    Coupler cpl(CouplerParams{});
    Waveform a(1.0, {1.0});
    Waveform b(1.0, {1.0, 2.0});
    EXPECT_DEATH(cpl.detectorOutput(a, b), "mismatch");
}

TEST(Coupler, ParameterValidation)
{
    EXPECT_DEATH(Coupler(CouplerParams{0.0, 0.0, 0.0}), "coupling");
    EXPECT_DEATH(Coupler(CouplerParams{1.5, 0.0, 0.0}), "coupling");
    EXPECT_DEATH(Coupler(CouplerParams{0.5, 0.9, 0.0}), "leak");
    EXPECT_DEATH(Coupler(CouplerParams{0.5, -0.1, 0.0}), "leak");
}

} // namespace
} // namespace divot
