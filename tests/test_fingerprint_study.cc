/**
 * @file
 * Tests for the genuine/impostor campaign driver behind Figs. 7-8.
 * These run small campaigns; the benches run the paper-scale ones.
 */

#include <gtest/gtest.h>

#include "fingerprint/study.hh"
#include "util/stats.hh"

namespace divot {
namespace {

StudyConfig
smallConfig()
{
    StudyConfig cfg;
    cfg.lines = 3;
    cfg.enrollReps = 6;
    cfg.genuinePerLine = 10;
    cfg.impostorPerPair = 3;
    return cfg;
}

TEST(Study, RoomTemperatureSeparatesCleanly)
{
    GenuineImpostorStudy study(smallConfig(), Rng(1));
    const StudyResult res = study.run();
    ASSERT_EQ(res.genuine.size(), 30u);
    ASSERT_EQ(res.impostor.size(), 18u);
    RunningStats g, i;
    g.addAll(res.genuine);
    i.addAll(res.impostor);
    EXPECT_GT(g.mean(), 0.5);
    EXPECT_LT(i.mean(), 0.35);
    EXPECT_GT(g.min(), i.max());
    EXPECT_NEAR(res.roc.eer, 0.0, 1e-9);
    EXPECT_GT(res.decidability, 3.0);
    EXPECT_GT(res.totalBusCycles, 0u);
}

TEST(Study, TemperatureSwingDegradesGenuine)
{
    StudyConfig room = smallConfig();
    StudyConfig oven = smallConfig();
    oven.environment.temperatureC = 23.0;
    oven.environment.temperatureSwingHiC = 75.0;
    const auto res_room = GenuineImpostorStudy(room, Rng(2)).run();
    const auto res_oven = GenuineImpostorStudy(oven, Rng(2)).run();
    RunningStats g_room, g_oven, i_room, i_oven;
    g_room.addAll(res_room.genuine);
    g_oven.addAll(res_oven.genuine);
    i_room.addAll(res_room.impostor);
    i_oven.addAll(res_oven.impostor);
    // Genuine distribution moves left (Fig. 8)...
    EXPECT_LT(g_oven.mean(), g_room.mean());
    // ...while the impostor distribution barely moves.
    EXPECT_NEAR(i_oven.mean(), i_room.mean(), 0.1);
}

TEST(Study, VibrationDegradesDecidability)
{
    StudyConfig calm = smallConfig();
    StudyConfig shaky = smallConfig();
    shaky.environment.vibrationStrain = 1.5e-2;
    const auto res_calm = GenuineImpostorStudy(calm, Rng(3)).run();
    const auto res_shaky = GenuineImpostorStudy(shaky, Rng(3)).run();
    EXPECT_LT(res_shaky.decidability, res_calm.decidability);
}

TEST(Study, MultiWireFusionSharpensSeparation)
{
    StudyConfig one = smallConfig();
    StudyConfig three = smallConfig();
    three.wires = 3;
    // Stress the environment so single-wire separation is imperfect.
    one.environment.vibrationStrain = 5e-3;
    three.environment.vibrationStrain = 5e-3;
    const auto res1 = GenuineImpostorStudy(one, Rng(4)).run();
    const auto res3 = GenuineImpostorStudy(three, Rng(4)).run();
    RunningStats i1, i3;
    i1.addAll(res1.impostor);
    i3.addAll(res3.impostor);
    // Geometric-mean fusion drives impostor scores down.
    EXPECT_LT(i3.mean(), i1.mean());
}

TEST(Study, LinesFabricatedPerWire)
{
    StudyConfig cfg = smallConfig();
    cfg.wires = 2;
    GenuineImpostorStudy study(cfg, Rng(5));
    EXPECT_EQ(study.lines().size(), cfg.lines * cfg.wires);
}

TEST(Study, ConfigValidation)
{
    StudyConfig bad = smallConfig();
    bad.lines = 1;
    EXPECT_DEATH(GenuineImpostorStudy(bad, Rng(6)), "at least 2");
    StudyConfig bad2 = smallConfig();
    bad2.wires = 0;
    EXPECT_DEATH(GenuineImpostorStudy(bad2, Rng(7)), "wire");
}

} // namespace
} // namespace divot
