/**
 * @file
 * Tests for the manufacturing-variation model: marginal statistics,
 * spatial correlation, uniqueness across draws, determinism.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "txline/manufacturing.hh"
#include "util/stats.hh"

namespace divot {
namespace {

TEST(CorrelatedProfile, MarginalStatistics)
{
    Rng rng(1);
    const auto p = correlatedGaussianProfile(20000, 0.05, 8.0, rng);
    RunningStats s;
    s.addAll(p);
    EXPECT_NEAR(s.mean(), 0.0, 0.005);
    EXPECT_NEAR(s.stddev(), 0.05, 0.005);
}

TEST(CorrelatedProfile, NeighborsCorrelateDistantPointsDont)
{
    Rng rng(2);
    const auto p = correlatedGaussianProfile(50000, 1.0, 10.0, rng);
    auto corr_at_lag = [&](std::size_t lag) {
        std::vector<double> a(p.begin(), p.end() - lag);
        std::vector<double> b(p.begin() + lag, p.end());
        return pearson(a, b);
    };
    EXPECT_GT(corr_at_lag(1), 0.95);
    EXPECT_GT(corr_at_lag(10), 0.5);
    EXPECT_LT(corr_at_lag(100), 0.1);
}

TEST(CorrelatedProfile, SmallKernelApproachesWhite)
{
    Rng rng(3);
    const auto p = correlatedGaussianProfile(20000, 1.0, 1e-6, rng);
    std::vector<double> a(p.begin(), p.end() - 1);
    std::vector<double> b(p.begin() + 1, p.end());
    EXPECT_LT(pearson(a, b), 0.2);
}

TEST(ManufacturingProcess, ProfileCentersOnNominal)
{
    ProcessParams params;
    ManufacturingProcess fab(params, Rng(5));
    const auto z = fab.drawImpedanceProfile(0.25, 0.5e-3);
    ASSERT_EQ(z.size(), 500u);
    RunningStats s;
    s.addAll(z);
    EXPECT_NEAR(s.mean(), params.nominalImpedance,
                params.nominalImpedance * 0.02);
    EXPECT_NEAR(s.stddev(),
                params.nominalImpedance * params.relativeSigma,
                params.nominalImpedance * params.relativeSigma * 0.5);
    for (double v : z)
        EXPECT_GT(v, 0.0);
}

TEST(ManufacturingProcess, DrawsShareOnlyTheCommonMode)
{
    // Lines from the same lot correlate by exactly the configured
    // panel-level common-mode fraction — the PUF property is in the
    // remaining independent component.
    ProcessParams params;
    ManufacturingProcess fab(params, Rng(7));
    const auto a = fab.drawImpedanceProfile(1.0, 0.5e-3);
    const auto b = fab.drawImpedanceProfile(1.0, 0.5e-3);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_NEAR(pearson(a, b), params.commonModeFraction, 0.15);
}

TEST(ManufacturingProcess, ZeroCommonModeDecorrelates)
{
    ProcessParams params;
    params.commonModeFraction = 0.0;
    ManufacturingProcess fab(params, Rng(7));
    const auto a = fab.drawImpedanceProfile(1.0, 0.5e-3);
    const auto b = fab.drawImpedanceProfile(1.0, 0.5e-3);
    EXPECT_LT(std::fabs(pearson(a, b)), 0.2);
}

TEST(ManufacturingProcess, DeterministicBySeed)
{
    ManufacturingProcess fab1(ProcessParams{}, Rng(9));
    ManufacturingProcess fab2(ProcessParams{}, Rng(9));
    const auto a = fab1.drawImpedanceProfile(0.1, 0.5e-3);
    const auto b = fab2.drawImpedanceProfile(0.1, 0.5e-3);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(ManufacturingProcess, RejectsBadGeometry)
{
    ManufacturingProcess fab(ProcessParams{}, Rng(11));
    EXPECT_DEATH(fab.drawImpedanceProfile(0.0, 0.5e-3), "geometry");
    EXPECT_DEATH(fab.drawImpedanceProfile(0.1, 0.0), "geometry");
    EXPECT_DEATH(fab.drawImpedanceProfile(0.001, 0.01), "geometry");
}

TEST(ManufacturingProcess, RejectsBadParams)
{
    ProcessParams bad;
    bad.relativeSigma = 0.9;
    EXPECT_DEATH(ManufacturingProcess(bad, Rng(1)), "relativeSigma");
    ProcessParams bad2;
    bad2.nominalImpedance = -1.0;
    EXPECT_DEATH(ManufacturingProcess(bad2, Rng(1)), "impedance");
}

/** Correlation length sweep: longer correlation => smoother profile. */
class SmoothnessSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(SmoothnessSweep, LongerCorrelationSmoother)
{
    const double corr = GetParam();
    Rng rng(13);
    const auto p = correlatedGaussianProfile(20000, 1.0, corr, rng);
    // Mean squared first difference shrinks as correlation grows.
    double msd = 0.0;
    for (std::size_t i = 1; i < p.size(); ++i)
        msd += (p[i] - p[i - 1]) * (p[i] - p[i - 1]);
    msd /= static_cast<double>(p.size() - 1);
    // Theory: for unit-variance smooth process, msd ~ (1/corr)^2
    // scale; just check monotone trend against a reference.
    Rng rng2(13);
    const auto q = correlatedGaussianProfile(20000, 1.0, corr * 4.0,
                                             rng2);
    double msd_smooth = 0.0;
    for (std::size_t i = 1; i < q.size(); ++i)
        msd_smooth += (q[i] - q[i - 1]) * (q[i] - q[i - 1]);
    msd_smooth /= static_cast<double>(q.size() - 1);
    EXPECT_LT(msd_smooth, msd);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SmoothnessSweep,
                         ::testing::Values(2.0, 4.0, 8.0, 16.0));

} // namespace
} // namespace divot
