/**
 * @file
 * Tests for the runtime authenticator: enrollment, genuine rounds,
 * module-swap mismatch, tamper alarms, and state transitions.
 */

#include <gtest/gtest.h>

#include "auth/authenticator.hh"
#include "txline/manufacturing.hh"
#include "txline/tamper.hh"

namespace divot {
namespace {

TransmissionLine
fabLine(uint64_t seed)
{
    ProcessParams params;
    ManufacturingProcess fab(params, Rng(seed));
    auto z = fab.drawImpedanceProfile(0.15, 0.5e-3);
    return TransmissionLine(std::move(z), 0.5e-3, params.velocity,
                            50.0, 50.25, params.lossNeperPerMeter,
                            "auth-line");
}

Authenticator
makeAuth(uint64_t seed = 1)
{
    return Authenticator(AuthConfig{}, ItdrConfig{}, Rng(seed),
                         "test-ch");
}

TEST(Authenticator, StartsUnenrolled)
{
    auto auth = makeAuth();
    EXPECT_EQ(auth.state(), AuthState::Unenrolled);
    const auto line = fabLine(1);
    EXPECT_DEATH(auth.checkRound(line), "before enrollment");
}

TEST(Authenticator, EnrollThenGenuineRoundsPass)
{
    auto auth = makeAuth();
    const auto line = fabLine(2);
    auth.enroll(line, 8);
    EXPECT_EQ(auth.state(), AuthState::Monitoring);
    for (int i = 0; i < 5; ++i) {
        const AuthVerdict v = auth.checkRound(line);
        EXPECT_TRUE(v.authenticated);
        EXPECT_FALSE(v.tamperAlarm);
        EXPECT_GT(v.similarity, 0.35);
    }
    EXPECT_EQ(auth.state(), AuthState::Monitoring);
    EXPECT_EQ(auth.rounds(), 5u);
}

TEST(Authenticator, ModuleSwapTriggersMismatch)
{
    auto auth = makeAuth(3);
    const auto line = fabLine(3);
    auth.enroll(line, 8);
    const auto foreign = fabLine(99);
    // Fill the sliding window with foreign measurements.
    AuthVerdict v{};
    for (int i = 0; i < 16; ++i)
        v = auth.checkRound(foreign);
    EXPECT_FALSE(v.authenticated);
    EXPECT_LT(v.similarity, 0.35);
    // A whole different line is also a massive IIP change.
    EXPECT_NE(auth.state(), AuthState::Monitoring);
}

TEST(Authenticator, TamperAlarmOnProbe)
{
    auto auth = makeAuth(4);
    const auto line = fabLine(4);
    auth.enroll(line, 16);
    MagneticProbe probe(0.5);
    const auto attacked = probe.apply(line);
    AuthVerdict v{};
    for (int i = 0; i < 16; ++i)
        v = auth.checkRound(attacked);
    EXPECT_TRUE(v.tamperAlarm);
    EXPECT_GT(v.peakError, 5e-7);
    EXPECT_EQ(auth.state(), AuthState::TamperAlert);
    // Probe located near mid-line.
    EXPECT_NEAR(v.tamperLocation, 0.5 * line.length(),
                0.2 * line.length());
}

TEST(Authenticator, RecoversAfterAttackRemoved)
{
    auto auth = makeAuth(5);
    const auto line = fabLine(5);
    auth.enroll(line, 16);
    MagneticProbe probe(0.5);
    const auto attacked = probe.apply(line);
    for (int i = 0; i < 16; ++i)
        auth.checkRound(attacked);
    EXPECT_EQ(auth.state(), AuthState::TamperAlert);
    // Probe removed (non-contact: no scar). The sliding window
    // flushes and monitoring resumes.
    AuthVerdict v{};
    for (int i = 0; i < 20; ++i)
        v = auth.checkRound(line);
    EXPECT_TRUE(v.authenticated);
    EXPECT_FALSE(v.tamperAlarm);
    EXPECT_EQ(auth.state(), AuthState::Monitoring);
}

TEST(Authenticator, AdoptEnrollmentSkipsMeasuring)
{
    auto source = makeAuth(6);
    const auto line = fabLine(6);
    source.enroll(line, 8);

    auto sink = makeAuth(7);
    sink.adoptEnrollment(source.enrolled(), source.nominal());
    EXPECT_EQ(sink.state(), AuthState::Monitoring);
    AuthVerdict v{};
    for (int i = 0; i < 4; ++i)
        v = sink.checkRound(line);
    EXPECT_TRUE(v.authenticated);
}

TEST(Authenticator, BusCyclesAccumulate)
{
    auto auth = makeAuth(8);
    const auto line = fabLine(8);
    auth.enroll(line, 4);
    const uint64_t after_enroll = auth.busCyclesConsumed();
    EXPECT_GT(after_enroll, 0u);
    auth.checkRound(line);
    EXPECT_GT(auth.busCyclesConsumed(), after_enroll);
}

TEST(Authenticator, ConfigValidation)
{
    AuthConfig bad;
    bad.similarityThreshold = 1.5;
    EXPECT_DEATH(Authenticator(bad, ItdrConfig{}, Rng(9), "x"),
                 "threshold");
    AuthConfig bad2;
    bad2.averageWindow = 0;
    EXPECT_DEATH(Authenticator(bad2, ItdrConfig{}, Rng(10), "x"),
                 "window");
    auto auth = makeAuth(11);
    EXPECT_DEATH(auth.enroll(fabLine(11), 0), "at least one");
}

} // namespace
} // namespace divot
