/**
 * @file
 * Tests for the DivotSystem quickstart facade and the DIVOT baseline
 * adapter.
 */

#include <gtest/gtest.h>

#include "core/divot_baseline.hh"
#include "core/divot_system.hh"
#include "txline/tamper.hh"

namespace divot {
namespace {

DivotSystemConfig
quickConfig()
{
    DivotSystemConfig cfg;
    cfg.lineLength = 0.1;  // keep tests fast
    cfg.enrollReps = 8;
    return cfg;
}

TEST(DivotSystem, CalibrateThenMonitorPasses)
{
    DivotSystem sys(quickConfig(), Rng(1));
    sys.calibrate();
    for (int i = 0; i < 4; ++i) {
        const AuthVerdict v = sys.monitorOnce();
        EXPECT_TRUE(v.authenticated);
        EXPECT_FALSE(v.tamperAlarm);
    }
    EXPECT_GT(sys.elapsed(), 0.0);
}

TEST(DivotSystem, StagedProbeRaisesAlarm)
{
    DivotSystem sys(quickConfig(), Rng(2));
    sys.calibrate();
    MagneticProbe probe(0.5);
    sys.stageAttack(probe);
    AuthVerdict v{};
    for (int i = 0; i < 16; ++i)
        v = sys.monitorOnce();
    EXPECT_TRUE(v.tamperAlarm);
}

TEST(DivotSystem, ClearAttackRestoresCleanLine)
{
    DivotSystem sys(quickConfig(), Rng(3));
    sys.calibrate();
    MagneticProbe probe(0.5);
    sys.stageAttack(probe);
    sys.clearAttack();
    // Non-contact probe leaves no scar.
    for (std::size_t i = 0; i < sys.line().segments(); ++i) {
        EXPECT_DOUBLE_EQ(sys.currentLine().impedanceAt(i),
                         sys.line().impedanceAt(i));
    }
}

TEST(DivotSystem, WireTapScarPersistsAfterClear)
{
    DivotSystem sys(quickConfig(), Rng(4));
    sys.calibrate();
    WireTap tap(0.5, 50.0);
    sys.stageAttack(tap);
    sys.clearAttack();
    const std::size_t mid = sys.line().segments() / 2;
    EXPECT_LT(sys.currentLine().impedanceAt(mid),
              sys.line().impedanceAt(mid));
    // Paper IV-E: the scarred line keeps alarming.
    AuthVerdict v{};
    for (int i = 0; i < 16; ++i)
        v = sys.monitorOnce();
    EXPECT_TRUE(v.tamperAlarm);
}

TEST(DivotSystem, ColdSwapFailsAuthentication)
{
    DivotSystem sys(quickConfig(), Rng(5));
    sys.calibrate();
    LoadModification swap(75.0);
    sys.stageAttack(swap);
    AuthVerdict v{};
    for (int i = 0; i < 16; ++i)
        v = sys.monitorOnce();
    // Either the tamper alarm or the auth check (or both) must fire.
    EXPECT_TRUE(v.tamperAlarm || !v.authenticated);
}

TEST(DivotBaseline, TraitsAreTheDivotStory)
{
    DivotBaseline divot;
    const auto t = divot.traits();
    EXPECT_TRUE(t.runtimeConcurrent);
    EXPECT_TRUE(t.integrable);
    EXPECT_TRUE(t.locatesAttack);
    EXPECT_DOUBLE_EQ(t.busTimeOverhead, 0.0);
    EXPECT_LT(divot.identificationEer(), 1e-3);
}

TEST(DivotBaseline, DetectsEveryAttackClass)
{
    DivotSystemConfig cfg = quickConfig();
    DivotBaseline divot(cfg);
    Rng rng(6);
    for (AttackKind kind : {AttackKind::ContactProbe,
                            AttackKind::EmProbe, AttackKind::WireTap,
                            AttackKind::ModuleSwap}) {
        const double p = divot.detectProbability(kind, 1.0, 3, rng);
        EXPECT_GT(p, 0.66) << attackKindName(kind);
    }
}

} // namespace
} // namespace divot
