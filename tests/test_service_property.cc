/**
 * @file
 * Request-interleaving property tests: every generated case drives a
 * seeded request schedule (mixed kinds, duplicate targets, unknown
 * names) through a FleetService while the underlying fleet runs its
 * own lifecycle — Barrier and Pipelined reactors, instrument fault
 * plans, store backing with an eviction-churning budget, and storage
 * fault plans all appear across the case family. Invariants per case:
 *
 *  - completeness: every submitted request answers exactly once;
 *  - determinism: a 1-thread and a pooled run of the same case emit
 *    bit-identical response digests AND byte-identical telemetry
 *    exports;
 *  - no junk: an Ok Verify's authenticated flag matches its
 *    similarity against the fleet's accept bar, and fenced wires
 *    never answer Ok.
 *
 * Case count scales with DIVOT_PROPERTY_CASES (default 64).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "property_harness.hh"
#include "service/fleet_service.hh"
#include "store/enrollment_db.hh"
#include "store/io.hh"

namespace divot {
namespace {

using property::PropertyCase;
using property::RequestStep;
using service::FleetService;
using service::RequestKind;
using service::ResponseStatus;
using service::ServiceRequest;
using service::ServiceResponse;

/** Outcome of one service-backed case run. */
struct ServiceRunResult
{
    uint64_t digest = 0;
    std::string exportJson;
    uint64_t submitted = 0;
    uint64_t responses = 0;
    uint64_t junk = 0;      //!< contract-violating responses
    std::size_t stuck = 0;  //!< requests still pending at the end
};

std::string
freshDbDir(const std::string &name)
{
    const std::string dir = std::string(::testing::TempDir()) + name;
    store::ensureDir(dir);
    for (unsigned s = 0; s < 8; ++s) {
        const std::string shard =
            dir + "/shard-" + std::to_string(s) + ".bin";
        store::removeFile(shard);
        store::removeFile(shard + ".tmp");
    }
    store::removeFile(dir + "/journal.wal");
    return dir;
}

/**
 * Build the case's fleet, front it with a FleetService, and play the
 * request schedule: step.tick requests are submitted before that
 * scheduler round. Runs a few drain rounds afterwards so parked
 * verifies/summaries answer. The db (when store-backed) lives inside
 * this function, so the whole run — including teardown — happens
 * before the caller compares exports.
 */
ServiceRunResult
runServiceCase(const PropertyCase &pc, unsigned threads)
{
    FleetConfig cfg = pc.fleet;
    cfg.threads = threads;
    ChannelScheduler fleet(cfg, Rng(pc.seed));
    for (std::size_t c = 0; c < pc.channels; ++c) {
        BusChannelConfig channel = pc.channel;
        channel.name = "w" + std::to_string(c);
        fleet.addChannel(channel);
    }
    fleet.calibrateAll();

    FaultInjector injector(pc.faults, Rng(pc.seed ^ 0xfau));
    if (!pc.faults.empty())
        fleet.channel(pc.faultWire).attachFaultInjector(&injector);

    static int invocation = 0;
    std::unique_ptr<store::EnrollmentDb> db;
    std::unique_ptr<FaultInjector> storageInjector;
    if (pc.storeBacked) {
        store::EnrollmentDbConfig dbCfg;
        dbCfg.directory = freshDbDir(
            "svc_prop_" + std::to_string(pc.index) + "_" +
            std::to_string(threads) + "_" +
            std::to_string(invocation++));
        dbCfg.shards = 4;
        dbCfg.overlayFlushRecords = 2;
        db.reset(new store::EnrollmentDb(dbCfg));
        db->attachTelemetry(&fleet.telemetry());
        if (!pc.storageFaults.empty()) {
            storageInjector.reset(new FaultInjector(
                pc.storageFaults, Rng(pc.seed ^ 0x57AB1EULL)));
            db->attachFaultInjector(storageInjector.get());
        }
        if (!db->open()) {
            ServiceRunResult failed;
            failed.exportJson = "db open failed";
            return failed;
        }
        // One enrollment's headroom: every tick evicts whatever is
        // unpinned, so requests race hydration and eviction.
        fleet.attachStore(db.get(),
                          fleet.channel(0).enrollmentBytes() * 3 / 2);
    }

    ServiceRunResult r;
    {
        FleetService svc(fleet);
        uint64_t id = 1;
        std::size_t next = 0;
        const double bar = fleet.config().similarityThreshold;
        const auto drain = [&]() {
            for (const ServiceResponse &resp : svc.drainResponses()) {
                if (resp.kind == RequestKind::Verify &&
                    resp.status == ResponseStatus::Ok) {
                    const bool flagged =
                        (resp.flags &
                         service::kResponseAuthenticated) != 0;
                    if (flagged != (resp.similarity >= bar))
                        ++r.junk;
                    if (resp.state ==
                        static_cast<uint64_t>(
                            AuthState::PendingReenroll))
                        ++r.junk; // fenced wires must answer Fenced
                }
            }
        };
        for (std::size_t t = 0; t < pc.ticks; ++t) {
            while (next < pc.requests.size() &&
                   pc.requests[next].tick == t) {
                const RequestStep &step = pc.requests[next++];
                ServiceRequest rq;
                rq.id = id++;
                rq.kind = static_cast<RequestKind>(step.kind);
                rq.channel = step.channel;
                svc.submit(rq);
            }
            fleet.tick();
            drain();
        }
        for (int extra = 0;
             extra < 8 && svc.pendingRequests() > 0; ++extra) {
            fleet.tick();
            drain();
        }
        r.stuck = svc.pendingRequests();
        r.digest = svc.responseDigest();
        r.submitted = svc.stats().submitted;
        r.responses = svc.stats().responses;
    } // service teardown closes any abandoned spans deterministically

    if (!pc.faults.empty())
        fleet.channel(pc.faultWire).attachFaultInjector(nullptr);
    r.exportJson = fleet.telemetry().exportJson();
    return r;
}

TEST(ServiceProperty, SchedulesAnswerCompletelyAndDeterministically)
{
    const std::size_t cases = property::caseCount();
    for (std::size_t i = 0; i < cases; ++i) {
        const PropertyCase pc = property::generateCase(i);
        const ServiceRunResult serial = runServiceCase(pc, 1);
        const ServiceRunResult pooled = runServiceCase(pc, 4);

        // Completeness: every submit answers exactly once; no parked
        // request outlives the drain rounds.
        EXPECT_EQ(serial.stuck, 0u) << "case " << i;
        EXPECT_EQ(serial.responses, serial.submitted) << "case " << i;

        // No junk under any interleaving of requests with eviction,
        // scrub, fault plans, and fence demotions.
        EXPECT_EQ(serial.junk, 0u) << "case " << i;
        EXPECT_EQ(pooled.junk, 0u) << "case " << i;

        // Determinism: the response stream and the full telemetry
        // export are a pure function of (seed, config) — identical
        // bytes at 1 and 4 worker threads.
        EXPECT_EQ(serial.digest, pooled.digest) << "case " << i;
        EXPECT_EQ(serial.exportJson, pooled.exportJson)
            << "case " << i;
    }
}

} // namespace
} // namespace divot
