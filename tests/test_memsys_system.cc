/**
 * @file
 * Tests for the assembled ProtectedMemorySystem beyond the scenario
 * integration suite: construction invariants, event plumbing,
 * workload-kind sweeps, and determinism under a fixed seed.
 */

#include <gtest/gtest.h>

#include "memsys/system.hh"
#include "txline/tamper.hh"

namespace divot {
namespace {

MemorySystemConfig
quick()
{
    MemorySystemConfig cfg;
    cfg.busLength = 0.05;
    cfg.enrollReps = 4;
    cfg.requestsPerKcycle = 30.0;
    return cfg;
}

TEST(MemorySystem, ConstructionCalibratesBothSides)
{
    ProtectedMemorySystem sys(quick(), Rng(1));
    EXPECT_EQ(sys.protocol().cpuSide().state(),
              AuthState::Monitoring);
    EXPECT_EQ(sys.protocol().memorySide().state(),
              AuthState::Monitoring);
    EXPECT_TRUE(sys.protocol().busTrusted());
    EXPECT_GT(sys.bus().segments(), 0u);
}

TEST(MemorySystem, DeterministicUnderSeed)
{
    ProtectedMemorySystem a(quick(), Rng(7));
    ProtectedMemorySystem b(quick(), Rng(7));
    a.run(100000);
    b.run(100000);
    const MemorySystemReport ra = a.report();
    const MemorySystemReport rb = b.report();
    EXPECT_EQ(ra.injected, rb.injected);
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.monitoringRounds, rb.monitoringRounds);
    EXPECT_EQ(ra.controller.rowHits, rb.controller.rowHits);
}

TEST(MemorySystem, RunIsResumable)
{
    ProtectedMemorySystem whole(quick(), Rng(9));
    ProtectedMemorySystem split(quick(), Rng(9));
    whole.run(120000);
    split.run(50000);
    split.run(70000);
    EXPECT_EQ(whole.report().completed, split.report().completed);
    EXPECT_EQ(whole.report().cyclesRun, split.report().cyclesRun);
}

/** Every workload kind drives traffic through the protected path. */
class WorkloadKindSweep
    : public ::testing::TestWithParam<WorkloadKind>
{
};

TEST_P(WorkloadKindSweep, TrafficCompletes)
{
    MemorySystemConfig cfg = quick();
    cfg.workload = GetParam();
    ProtectedMemorySystem sys(cfg, Rng(11));
    sys.run(200000);
    const MemorySystemReport rep = sys.report();
    EXPECT_GT(rep.injected, 1000u);
    EXPECT_GT(rep.completed, rep.injected * 8 / 10);
    EXPECT_TRUE(rep.detections.empty());
}

INSTANTIATE_TEST_SUITE_P(Kinds, WorkloadKindSweep,
                         ::testing::Values(WorkloadKind::Sequential,
                                           WorkloadKind::Random,
                                           WorkloadKind::HotCold));

TEST(MemorySystem, ScheduledRepairRestoresService)
{
    ProtectedMemorySystem sys(quick(), Rng(13));
    MagneticProbe probe(0.5);
    sys.scheduleBusEvent(100000, probe.apply(sys.bus()),
                         "probe on");
    sys.scheduleBusEvent(900000, sys.bus(), "probe off");
    sys.run(3000000);
    const MemorySystemReport rep = sys.report();
    ASSERT_FALSE(rep.detections.empty());
    // After the repair, the controller trusts the bus again and the
    // tail of the run completes requests.
    EXPECT_GT(rep.completed, 0u);
    EXPECT_TRUE(sys.protocol().busTrusted());
}

TEST(MemorySystem, PokePeekSurviveTraffic)
{
    ProtectedMemorySystem sys(quick(), Rng(15));
    sys.sdram().poke(0xabc, 123456789ull);
    sys.run(50000);
    EXPECT_EQ(sys.sdram().peek(0xabc), 123456789ull);
}

} // namespace
} // namespace divot
