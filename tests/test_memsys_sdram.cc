/**
 * @file
 * Tests for the cycle-level SDRAM device: command legality under the
 * timing constraints, bank state, refresh, the DIVOT gate, and the
 * data backdoor.
 */

#include <gtest/gtest.h>

#include "memsys/sdram.hh"

namespace divot {
namespace {

Sdram
makeDevice()
{
    return Sdram(SdramTiming{}, SdramGeometry{});
}

TEST(Sdram, ActivateOpensRowAfterTrcd)
{
    auto dev = makeDevice();
    const DramAddress a{0, 5, 0};
    EXPECT_TRUE(dev.canIssue(DramCommand::Activate, a, 0));
    EXPECT_FALSE(dev.canIssue(DramCommand::Read, a, 0));
    const uint64_t ready = dev.issue(DramCommand::Activate, a, 0);
    EXPECT_EQ(ready, SdramTiming{}.tRCD);
    EXPECT_EQ(dev.openRow(0), 5);
    // Read illegal until tRCD elapses.
    EXPECT_FALSE(dev.canIssue(DramCommand::Read, a, ready - 1));
    EXPECT_TRUE(dev.canIssue(DramCommand::Read, a, ready));
}

TEST(Sdram, ReadCompletesAfterClPlusBurst)
{
    auto dev = makeDevice();
    const DramAddress a{1, 3, 7};
    dev.issue(DramCommand::Activate, a, 0);
    const SdramTiming t{};
    const uint64_t done = dev.issue(DramCommand::Read, a, t.tRCD);
    EXPECT_EQ(done, t.tRCD + t.tCL + t.burstCycles);
}

TEST(Sdram, WrongRowRequiresPrecharge)
{
    auto dev = makeDevice();
    const DramAddress a{0, 5, 0};
    const DramAddress b{0, 6, 0};
    dev.issue(DramCommand::Activate, a, 0);
    const SdramTiming t{};
    EXPECT_FALSE(dev.canIssue(DramCommand::Read, b, t.tRCD));
    EXPECT_FALSE(dev.canIssue(DramCommand::Activate, b, t.tRCD));
    // Precharge must respect tRAS from activation.
    EXPECT_FALSE(dev.canIssue(DramCommand::Precharge, a, t.tRCD));
    EXPECT_TRUE(dev.canIssue(DramCommand::Precharge, a, t.tRAS));
    const uint64_t ready = dev.issue(DramCommand::Precharge, a, t.tRAS);
    EXPECT_EQ(dev.openRow(0), -1);
    EXPECT_TRUE(dev.canIssue(DramCommand::Activate, b, ready));
    EXPECT_FALSE(dev.canIssue(DramCommand::Activate, b, ready - 1));
}

TEST(Sdram, BanksAreIndependent)
{
    auto dev = makeDevice();
    dev.issue(DramCommand::Activate, {0, 1, 0}, 0);
    // A different bank can activate immediately.
    EXPECT_TRUE(dev.canIssue(DramCommand::Activate, {1, 9, 0}, 1));
    dev.issue(DramCommand::Activate, {1, 9, 0}, 1);
    EXPECT_EQ(dev.openRow(0), 1);
    EXPECT_EQ(dev.openRow(1), 9);
}

TEST(Sdram, RefreshNeedsAllBanksClosedAndBlocksAfter)
{
    auto dev = makeDevice();
    const SdramTiming t{};
    dev.issue(DramCommand::Activate, {0, 1, 0}, 0);
    EXPECT_FALSE(dev.canIssue(DramCommand::Refresh, {0, 0, 0}, 5));
    dev.issue(DramCommand::Precharge, {0, 1, 0}, t.tRAS);
    const uint64_t closed = t.tRAS + t.tRP;
    EXPECT_TRUE(dev.canIssue(DramCommand::Refresh, {0, 0, 0}, closed));
    const uint64_t ready = dev.issue(DramCommand::Refresh, {0, 0, 0},
                                     closed);
    EXPECT_EQ(ready, closed + t.tRFC);
    EXPECT_FALSE(dev.canIssue(DramCommand::Activate, {2, 0, 0},
                              ready - 1));
    EXPECT_TRUE(dev.canIssue(DramCommand::Activate, {2, 0, 0}, ready));
}

TEST(Sdram, DivotGateBlocksDataNotActivation)
{
    auto dev = makeDevice();
    const DramAddress a{0, 2, 0};
    dev.issue(DramCommand::Activate, a, 0);
    const SdramTiming t{};
    dev.setAccessBlocked(true);
    EXPECT_TRUE(dev.accessBlocked());
    // Section III: the *column access* is gated; row activation logic
    // still operates.
    EXPECT_FALSE(dev.canIssue(DramCommand::Read, a, t.tRCD));
    EXPECT_FALSE(dev.canIssue(DramCommand::Write, a, t.tRCD));
    EXPECT_TRUE(dev.canIssue(DramCommand::Activate, {1, 0, 0}, t.tRCD));
    dev.setAccessBlocked(false);
    EXPECT_TRUE(dev.canIssue(DramCommand::Read, a, t.tRCD));
}

TEST(Sdram, GateRejectionCounter)
{
    auto dev = makeDevice();
    EXPECT_EQ(dev.gateRejections(), 0u);
    dev.noteGateRejection();
    dev.noteGateRejection();
    EXPECT_EQ(dev.gateRejections(), 2u);
}

TEST(Sdram, PokePeekBackdoor)
{
    auto dev = makeDevice();
    EXPECT_EQ(dev.peek(0x1234), 0u);
    dev.poke(0x1234, 0xdeadbeefULL);
    EXPECT_EQ(dev.peek(0x1234), 0xdeadbeefULL);
}

TEST(Sdram, IssueWithoutLegalityPanics)
{
    auto dev = makeDevice();
    const DramAddress a{0, 2, 0};
    EXPECT_DEATH(dev.issue(DramCommand::Read, a, 0), "canIssue");
}

TEST(Sdram, BankBoundsPanics)
{
    auto dev = makeDevice();
    const DramAddress bad{64, 0, 0};
    EXPECT_DEATH(dev.canIssue(DramCommand::Read, bad, 0),
                 "out of range");
    EXPECT_DEATH(dev.openRow(64), "out of range");
}

TEST(Sdram, DegenerateGeometryFatal)
{
    SdramGeometry bad;
    bad.banks = 0;
    EXPECT_DEATH(Sdram(SdramTiming{}, bad), "geometry");
}

} // namespace
} // namespace divot
