/**
 * @file
 * Tests for the Waveform container and its arithmetic/geometry.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "signal/waveform.hh"

namespace divot {
namespace {

Waveform
ramp(std::size_t n, double dt = 1e-9, double t0 = 0.0)
{
    std::vector<double> s(n);
    for (std::size_t i = 0; i < n; ++i)
        s[i] = static_cast<double>(i);
    return Waveform(dt, std::move(s), t0);
}

TEST(Waveform, TimesAndSizes)
{
    const Waveform w = ramp(5, 2e-9, 1e-9);
    EXPECT_EQ(w.size(), 5u);
    EXPECT_DOUBLE_EQ(w.timeAt(0), 1e-9);
    EXPECT_DOUBLE_EQ(w.timeAt(4), 9e-9);
    EXPECT_DOUBLE_EQ(w.endTime(), 11e-9);
}

TEST(Waveform, ValueAtInterpolatesLinearly)
{
    const Waveform w = ramp(4);
    EXPECT_DOUBLE_EQ(w.valueAt(0.5e-9), 0.5);
    EXPECT_DOUBLE_EQ(w.valueAt(2.25e-9), 2.25);
}

TEST(Waveform, ValueAtClampsOutside)
{
    const Waveform w = ramp(4);
    EXPECT_DOUBLE_EQ(w.valueAt(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(w.valueAt(1.0), 3.0);
}

TEST(Waveform, ArithmeticSampleWise)
{
    Waveform a = ramp(3), b = ramp(3);
    const Waveform sum = a + b;
    EXPECT_DOUBLE_EQ(sum[2], 4.0);
    const Waveform diff = a - b;
    EXPECT_DOUBLE_EQ(diff.peakAbs(), 0.0);
    const Waveform scaled = a * 3.0;
    EXPECT_DOUBLE_EQ(scaled[1], 3.0);
}

TEST(Waveform, SizeMismatchPanics)
{
    Waveform a = ramp(3), b = ramp(4);
    EXPECT_DEATH(a += b, "size mismatch");
}

TEST(Waveform, EnergyAndRms)
{
    Waveform w(1.0, {3.0, 4.0});
    EXPECT_DOUBLE_EQ(w.energy(), 25.0);
    EXPECT_DOUBLE_EQ(w.rms(), std::sqrt(12.5));
}

TEST(Waveform, PeakDetection)
{
    Waveform w(1.0, {0.1, -5.0, 2.0});
    EXPECT_DOUBLE_EQ(w.peakAbs(), 5.0);
    EXPECT_EQ(w.peakIndex(), 1u);
}

TEST(Waveform, RemoveMeanZeroesAverage)
{
    Waveform w = ramp(10);
    w.removeMean();
    double sum = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i)
        sum += w[i];
    EXPECT_NEAR(sum, 0.0, 1e-12);
}

TEST(Waveform, NormalizeUnitNorm)
{
    Waveform w(1.0, {3.0, 4.0});
    w.normalizeUnitNorm();
    EXPECT_NEAR(w[0] * w[0] + w[1] * w[1], 1.0, 1e-12);
    Waveform z(1.0, {0.0, 0.0});
    z.normalizeUnitNorm();  // must not divide by zero
    EXPECT_DOUBLE_EQ(z[0], 0.0);
}

TEST(Waveform, SliceRespectsWindow)
{
    const Waveform w = ramp(10, 1e-9);
    const Waveform s = w.slice(2e-9, 5e-9);
    ASSERT_EQ(s.size(), 3u);
    EXPECT_DOUBLE_EQ(s[0], 2.0);
    EXPECT_DOUBLE_EQ(s.startTime(), 2e-9);
}

TEST(Waveform, SliceDegenerate)
{
    const Waveform w = ramp(10, 1e-9);
    EXPECT_TRUE(w.slice(5e-9, 5e-9).empty());
    EXPECT_TRUE(w.slice(100e-9, 200e-9).empty());
}

TEST(Waveform, ResampleRoundtripOnLinearSignal)
{
    const Waveform w = ramp(11, 1e-9);
    const Waveform r = w.resampled(0.5e-9);
    // Linear signals are reproduced exactly by linear interpolation.
    for (std::size_t i = 0; i < r.size(); ++i)
        EXPECT_NEAR(r[i], r.timeAt(i) / 1e-9, 1e-9);
}

TEST(Waveform, NormalizedInnerProductProperties)
{
    Waveform a(1.0, {1.0, 2.0, -1.0, 0.5});
    Waveform b = a;
    EXPECT_NEAR(normalizedInnerProduct(a, b), 1.0, 1e-12);
    Waveform neg = a * -1.0;
    EXPECT_NEAR(normalizedInnerProduct(a, neg), -1.0, 1e-12);
    Waveform orth(1.0, {2.0, -1.0, 0.0, 0.0});
    // Construct an orthogonal vector explicitly.
    Waveform c(1.0, {1.0, 0.0, 0.0, 0.0});
    Waveform d(1.0, {0.0, 1.0, 0.0, 0.0});
    EXPECT_NEAR(normalizedInnerProduct(c, d), 0.0, 1e-12);
    (void)orth;
}

TEST(Waveform, SeriesMatchesSamples)
{
    const Waveform w = ramp(3, 1e-9, 5e-9);
    const auto s = w.series();
    ASSERT_EQ(s.size(), 3u);
    EXPECT_DOUBLE_EQ(s[1].first, 6e-9);
    EXPECT_DOUBLE_EQ(s[1].second, 1.0);
}

TEST(Waveform, BadDtRejected)
{
    EXPECT_DEATH(Waveform(0.0, {1.0}), "dt must be positive");
    EXPECT_DEATH(Waveform(-1.0, {1.0}), "dt must be positive");
}

} // namespace
} // namespace divot
