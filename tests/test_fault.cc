/**
 * @file
 * Tests for the fault-injection plan and deterministic injector:
 * schedule windows, frame purity, per-kind effect mapping, and EPROM
 * corruption events.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "fault/fault.hh"

namespace divot {
namespace {

bool
framesEqual(const FaultFrame &a, const FaultFrame &b)
{
    return a.comparatorStuck == b.comparatorStuck &&
           a.comparatorOffset == b.comparatorOffset &&
           a.pllDropoutRate == b.pllDropoutRate &&
           a.counterFlipRate == b.counterFlipRate &&
           a.emiAmplitude == b.emiAmplitude &&
           a.emiFrequency == b.emiFrequency &&
           a.emiPhase == b.emiPhase &&
           a.cycleOverrunFactor == b.cycleOverrunFactor;
}

TEST(FaultPlan, BuildersAppendSpecs)
{
    FaultPlan plan;
    plan.comparatorStuck(0, 1, true)
        .offsetDrift(2, 3, 1e-4)
        .pllDropout(0, 0, 0.1)
        .counterBitFlip(5, 1, 0.2)
        .emiBurst(1, 2, 2e-3, 40e6)
        .budgetOverrun(0, 0, 2.0)
        .epromCorruption(0, 2.0);
    ASSERT_EQ(plan.specs().size(), 7u);
    EXPECT_EQ(plan.specs()[0].kind, FaultKind::ComparatorStuckHigh);
    EXPECT_EQ(plan.specs()[1].kind, FaultKind::ComparatorOffsetDrift);
    EXPECT_EQ(plan.specs()[4].frequency, 40e6);
    EXPECT_FALSE(plan.empty());
    EXPECT_TRUE(FaultPlan{}.empty());
}

TEST(FaultPlan, DefaultSeedHonorsEnvironment)
{
    ::setenv("DIVOT_FAULT_SEED", "12345", 1);
    EXPECT_EQ(FaultPlan::defaultSeed(), 12345u);
    ::unsetenv("DIVOT_FAULT_SEED");
    EXPECT_EQ(FaultPlan::defaultSeed(), 0xFA017u);
}

TEST(FaultInjector, ScheduleWindowRespected)
{
    FaultPlan plan;
    plan.offsetDrift(3, 2, 1e-4);
    FaultInjector inj(plan, Rng(7));
    EXPECT_FALSE(inj.frameFor(2).any());
    EXPECT_TRUE(inj.frameFor(3).any());
    EXPECT_TRUE(inj.frameFor(4).any());
    EXPECT_FALSE(inj.frameFor(5).any());
}

TEST(FaultInjector, ForeverSpecNeverExpires)
{
    FaultPlan plan;
    plan.budgetOverrun(1, 0, 1.5);
    FaultInjector inj(plan, Rng(7));
    EXPECT_FALSE(inj.frameFor(0).any());
    EXPECT_DOUBLE_EQ(inj.frameFor(1).cycleOverrunFactor, 1.5);
    EXPECT_DOUBLE_EQ(inj.frameFor(1u << 20).cycleOverrunFactor, 1.5);
}

TEST(FaultInjector, FrameForIsPureInIndex)
{
    FaultPlan plan;
    plan.emiBurst(0, 0, 2e-3).pllDropout(0, 0, 0.1);
    FaultInjector a(plan, Rng(42));
    FaultInjector b(plan, Rng(42));

    // Same index, any call order, any instance: identical frame.
    const FaultFrame f5 = a.frameFor(5);
    (void)a.frameFor(17);
    (void)a.frameFor(3);
    EXPECT_TRUE(framesEqual(f5, a.frameFor(5)));
    (void)b.frameFor(9);
    EXPECT_TRUE(framesEqual(f5, b.frameFor(5)));

    // Different seeds diverge (the EMI phase draw is per-frame).
    FaultInjector c(plan, Rng(43));
    EXPECT_FALSE(framesEqual(f5, c.frameFor(5)));
}

TEST(FaultInjector, NextFrameAdvancesCounter)
{
    FaultPlan plan;
    plan.comparatorStuck(1, 1, false);
    FaultInjector inj(plan, Rng(1));
    EXPECT_EQ(inj.measurementIndex(), 0u);
    EXPECT_EQ(inj.nextFrame().comparatorStuck, -1);
    EXPECT_EQ(inj.nextFrame().comparatorStuck, 0);
    EXPECT_EQ(inj.measurementIndex(), 2u);
    inj.resetIndex();
    EXPECT_EQ(inj.measurementIndex(), 0u);
}

TEST(FaultInjector, EffectMapping)
{
    FaultPlan plan;
    plan.comparatorStuck(0, 1, true)
        .offsetDrift(0, 1, 2e-4)
        .counterBitFlip(0, 1, 0.25)
        .emiBurst(0, 1, 1e-3, 30e6);
    FaultInjector inj(plan, Rng(5));
    const FaultFrame f = inj.frameFor(0);
    EXPECT_EQ(f.comparatorStuck, 1);
    EXPECT_DOUBLE_EQ(f.comparatorOffset, 2e-4);
    EXPECT_DOUBLE_EQ(f.counterFlipRate, 0.25);
    EXPECT_DOUBLE_EQ(f.emiAmplitude, 1e-3);
    EXPECT_DOUBLE_EQ(f.emiFrequency, 30e6);
    EXPECT_GE(f.emiPhase, 0.0);
    EXPECT_LT(f.emiPhase, 6.2831853072);
    EXPECT_TRUE(f.any());
    EXPECT_FALSE(FaultFrame{}.any());
}

TEST(FaultInjector, CorruptFileFlipsScheduledBytes)
{
    const std::string path = "test_fault_corrupt.bin";
    const std::vector<char> pristine(256, 0x11);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(pristine.data(), pristine.size());
    }

    FaultPlan plan;
    plan.epromCorruption(1, 3.0);
    FaultInjector inj(plan, Rng(9));

    // Event 0 is not scheduled: file untouched.
    EXPECT_EQ(inj.epromFaultAt(0), false);
    EXPECT_EQ(inj.corruptFile(path, 0), 0u);
    {
        std::ifstream in(path, std::ios::binary);
        std::vector<char> now((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
        EXPECT_EQ(now, pristine);
    }

    // Event 1 flips bits in at most 3 byte positions.
    EXPECT_TRUE(inj.epromFaultAt(1));
    EXPECT_EQ(inj.corruptFile(path, 1), 3u);
    std::vector<char> after;
    {
        std::ifstream in(path, std::ios::binary);
        after.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    ASSERT_EQ(after.size(), pristine.size());
    std::size_t changed = 0;
    for (std::size_t i = 0; i < after.size(); ++i)
        if (after[i] != pristine[i])
            ++changed;
    EXPECT_GE(changed, 1u);
    EXPECT_LE(changed, 3u);

    // Determinism: a same-seed injector corrupts identically.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(pristine.data(), pristine.size());
    }
    FaultInjector twin(plan, Rng(9));
    EXPECT_EQ(twin.corruptFile(path, 1), 3u);
    std::vector<char> again;
    {
        std::ifstream in(path, std::ios::binary);
        again.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    EXPECT_EQ(again, after);
    std::remove(path.c_str());
}

} // namespace
} // namespace divot
