/**
 * @file
 * Migration and corruption fuzz tests across the three enrollment
 * persistence formats (v1 single-copy, v2 dual-bank EnrollmentStore,
 * v3 EnrollmentDb shard) plus the write-ahead journal.
 *
 * The invariant under every mutation — single byte flips at every
 * sampled offset, random multi-byte rot, junk and truncated journal
 * tails — is *never load junk*: a parse either fails (ok = false /
 * format 0), or every record it returns is byte-identical to the
 * original that was written under that id. Silent corruption of a
 * fingerprint is the one outcome the CRC framing exists to make
 * impossible.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "auth/enrollment.hh"
#include "store/codec.hh"
#include "store/enrollment_db.hh"
#include "store/io.hh"
#include "util/rng.hh"

namespace divot::store {
namespace {

Fingerprint
fuzzFingerprint(double seed)
{
    Waveform raw(1e-12,
                 {seed, seed * 2.0, seed + 0.25, 1.0 - seed, seed});
    Waveform residual(1e-12, {0.4, -0.4, 0.4, -0.4, 0.2});
    return Fingerprint::fromParts(raw, residual,
                                  "lbl" + std::to_string(seed));
}

std::map<std::string, EnrollmentRecord>
originalRecords()
{
    std::map<std::string, EnrollmentRecord> records;
    for (int i = 0; i < 4; ++i) {
        EnrollmentRecord rec;
        rec.id = "mig" + std::to_string(i);
        rec.fp = fuzzFingerprint(i + 1.0);
        if (i % 2 == 0)
            rec.nominal = Waveform(1e-12, {1.0, 2.0});
        rec.generation = 1;
        records[rec.id] = rec;
    }
    return records;
}

bool
matchesOriginal(const std::map<std::string, EnrollmentRecord> &orig,
                const std::string &id, const EnrollmentRecord &got)
{
    const auto it = orig.find(id);
    if (it == orig.end())
        return false;
    const EnrollmentRecord &want = it->second;
    // Legacy formats never stored nominal/flags/generation; those
    // fields import as defaults, so only the fingerprint is compared.
    return got.id == want.id &&
        got.fp.raw().samples() == want.fp.raw().samples() &&
        got.fp.residual().samples() == want.fp.residual().samples();
}

/** Build a v1 single-copy image by hand (nothing writes v1 anymore). */
std::vector<char>
buildV1Image(const std::map<std::string, EnrollmentRecord> &records)
{
    std::vector<char> payload;
    putU64(payload, records.size());
    for (const auto &[id, rec] : records) {
        putString(payload, id);
        putString(payload, rec.fp.label());
        putWaveform(payload, rec.fp.raw());
        putWaveform(payload, rec.fp.residual());
    }
    std::vector<char> image;
    putU64(image, (1ull << 32) | kStoreMagic);
    putU64(image, fnv1a(payload));
    image.insert(image.end(), payload.begin(), payload.end());
    return image;
}

/** Build a v2 dual-bank image through the real EnrollmentStore. */
std::vector<char>
buildV2Image(const std::map<std::string, EnrollmentRecord> &records)
{
    EnrollmentStore store;
    for (const auto &[id, rec] : records)
        store.enroll(id, rec.fp);
    const std::string path =
        std::string(::testing::TempDir()) + "mig_v2.bin";
    EXPECT_TRUE(store.saveToFile(path));
    std::vector<char> image;
    EXPECT_TRUE(readFile(path, image));
    return image;
}

/** Parse `bytes` as any known format; every recovered record must
 *  match its original. @return true when something parsed */
void
expectNoJunk(const std::map<std::string, EnrollmentRecord> &orig,
             const std::vector<char> &bytes, const char *what,
             std::size_t pos)
{
    std::map<std::string, EnrollmentRecord> legacy;
    const int version = parseLegacyImage(bytes, legacy);
    if (version != 0) {
        for (const auto &[id, rec] : legacy)
            EXPECT_TRUE(matchesOriginal(orig, id, rec))
                << what << " byte " << pos << " id " << id;
    }
    std::map<std::string, EnrollmentRecord> shard;
    const ShardParseReport report = parseShardImage(bytes, shard);
    if (report.ok) {
        for (const auto &[id, rec] : shard)
            EXPECT_TRUE(matchesOriginal(orig, id, rec))
                << what << " byte " << pos << " id " << id;
    }
}

class StoreMigrationFuzz : public ::testing::Test
{
  protected:
    void
    fuzzImage(const std::vector<char> &image, const char *what,
              bool dual_bank)
    {
        const auto orig = originalRecords();

        // Single byte flip at every sampled offset.
        const std::size_t stride =
            std::max<std::size_t>(1, image.size() / 257);
        for (std::size_t pos = 0; pos < image.size(); pos += stride) {
            std::vector<char> bad = image;
            bad[pos] = static_cast<char>(bad[pos] ^ 0x5a);
            expectNoJunk(orig, bad, what, pos);
            if (dual_bank) {
                // One damaged byte must not lose a dual-bank image.
                std::map<std::string, EnrollmentRecord> out;
                const bool ok =
                    parseLegacyImage(bad, out) != 0 ||
                    parseShardImage(bad, out).ok;
                EXPECT_TRUE(ok) << what << " byte " << pos;
            }
        }

        // Random multi-byte rot.
        Rng rng(0xF0220u);
        for (int iter = 0; iter < 200; ++iter) {
            std::vector<char> bad = image;
            const unsigned flips =
                1 + static_cast<unsigned>(rng.uniformInt(8));
            for (unsigned f = 0; f < flips; ++f) {
                const std::size_t pos = static_cast<std::size_t>(
                    rng.uniformInt(bad.size()));
                bad[pos] = static_cast<char>(
                    bad[pos] ^ (1u << rng.uniformInt(8)));
            }
            expectNoJunk(orig, bad, what, iter);
        }

        // Truncations at arbitrary points.
        for (int iter = 0; iter < 32; ++iter) {
            const std::size_t keep = static_cast<std::size_t>(
                rng.uniformInt(image.size()));
            std::vector<char> bad(image.begin(),
                                  image.begin() + keep);
            expectNoJunk(orig, bad, what, keep);
        }
    }
};

TEST_F(StoreMigrationFuzz, V1ImageParsesCleanAndNeverLoadsJunk)
{
    const auto orig = originalRecords();
    const std::vector<char> image = buildV1Image(orig);

    std::map<std::string, EnrollmentRecord> out;
    ASSERT_EQ(parseLegacyImage(image, out), 1);
    ASSERT_EQ(out.size(), orig.size());
    for (const auto &[id, rec] : out)
        EXPECT_TRUE(matchesOriginal(orig, id, rec));

    fuzzImage(image, "v1", /*dual_bank=*/false);
}

TEST_F(StoreMigrationFuzz, V2ImageParsesCleanAndNeverLoadsJunk)
{
    const auto orig = originalRecords();
    const std::vector<char> image = buildV2Image(orig);

    std::map<std::string, EnrollmentRecord> out;
    ASSERT_EQ(parseLegacyImage(image, out), 2);
    ASSERT_EQ(out.size(), orig.size());

    fuzzImage(image, "v2", /*dual_bank=*/true);
}

TEST_F(StoreMigrationFuzz, V3ShardImageNeverLoadsJunk)
{
    const auto orig = originalRecords();
    const std::vector<char> image = buildShardImage(orig);

    std::map<std::string, EnrollmentRecord> out;
    ASSERT_TRUE(parseShardImage(image, out).ok);
    ASSERT_EQ(out.size(), orig.size());

    fuzzImage(image, "v3", /*dual_bank=*/true);
}

TEST_F(StoreMigrationFuzz, LegacyImagesImportIntoTheDb)
{
    const auto orig = originalRecords();
    const std::string dir =
        std::string(::testing::TempDir()) + "mig_import";
    ensureDir(dir);
    removeFile(dir + "/journal.wal");
    for (unsigned s = 0; s < 4; ++s)
        removeFile(dir + "/shard-" + std::to_string(s) + ".bin");

    EnrollmentDbConfig cfg;
    cfg.directory = dir;
    cfg.shards = 4;
    EnrollmentDb db(cfg);
    ASSERT_TRUE(db.open());

    EXPECT_EQ(db.importImage(buildV1Image(orig)), orig.size());
    for (const auto &[id, rec] : orig) {
        EnrollmentRecord got;
        ASSERT_EQ(db.get(id, got), DbGetStatus::Ok) << id;
        EXPECT_TRUE(matchesOriginal(orig, id, got)) << id;
    }

    // Re-import of the v2 flavor overwrites idempotently.
    EXPECT_EQ(db.importImage(buildV2Image(orig)), orig.size());
    for (const auto &[id, rec] : orig) {
        EnrollmentRecord got;
        ASSERT_EQ(db.get(id, got), DbGetStatus::Ok) << id;
        EXPECT_TRUE(matchesOriginal(orig, id, got)) << id;
    }
}

// --------------------------------------------------------------------
// Journal-tail fuzz: whatever lands after (or inside) the framed
// entries, open() recovers the intact prefix and discards the rest.

class JournalTailFuzz : public ::testing::Test
{
  protected:
    std::string dir_;
    EnrollmentDbConfig cfg_;

    void
    SetUp() override
    {
        dir_ = std::string(::testing::TempDir()) + "mig_journal";
        ensureDir(dir_);
        removeFile(dir_ + "/journal.wal");
        for (unsigned s = 0; s < 4; ++s) {
            removeFile(dir_ + "/shard-" + std::to_string(s) + ".bin");
            removeFile(dir_ + "/shard-" + std::to_string(s) +
                       ".bin.tmp");
        }
        cfg_.directory = dir_;
        cfg_.shards = 4;
        cfg_.overlayFlushRecords = 100; // keep everything journaled
    }

    void
    seedJournal()
    {
        EnrollmentDb db(cfg_);
        ASSERT_TRUE(db.open());
        const auto orig = originalRecords();
        for (const auto &[id, rec] : orig)
            ASSERT_TRUE(db.put(rec));
    }

    void
    verifyNoJunk()
    {
        const auto orig = originalRecords();
        EnrollmentDb db(cfg_);
        ASSERT_TRUE(db.open());
        for (const auto &[id, rec] : orig) {
            EnrollmentRecord got;
            const DbGetStatus st = db.get(id, got);
            if (st == DbGetStatus::Ok)
                EXPECT_TRUE(matchesOriginal(orig, id, got)) << id;
            else
                EXPECT_EQ(st, DbGetStatus::Missing) << id;
        }
        // The journal frames cleanly again: new mutations land.
        EnrollmentRecord fresh;
        fresh.id = "fresh";
        fresh.fp = fuzzFingerprint(9.0);
        EXPECT_TRUE(db.put(fresh));
    }
};

TEST_F(JournalTailFuzz, JunkTailIsDiscarded)
{
    seedJournal();
    std::ofstream out(dir_ + "/journal.wal",
                      std::ios::binary | std::ios::app);
    Rng rng(77);
    for (int i = 0; i < 100; ++i)
        out.put(static_cast<char>(rng.uniformInt(256)));
    out.close();

    verifyNoJunk();
}

TEST_F(JournalTailFuzz, TruncatedFinalEntryIsDiscarded)
{
    seedJournal();
    const int64_t size = fileSize(dir_ + "/journal.wal");
    ASSERT_GT(size, 20);
    ASSERT_TRUE(truncateFile(dir_ + "/journal.wal",
                             static_cast<uint64_t>(size - 13)));

    const auto orig = originalRecords();
    EnrollmentDb db(cfg_);
    ASSERT_TRUE(db.open());
    // All but the last record replay; the torn one vanishes whole.
    EXPECT_EQ(db.replayedEntries(), orig.size() - 1);
    verifyNoJunk();
}

TEST_F(JournalTailFuzz, RottedMidEntryIsSkippedNotFatal)
{
    seedJournal();
    std::vector<char> journal;
    ASSERT_TRUE(readFile(dir_ + "/journal.wal", journal));
    // Flip a byte inside the first entry's body (headers start with
    // the magic at offset 0; the body begins at 24).
    ASSERT_GT(journal.size(), 64u);
    journal[40] = static_cast<char>(journal[40] ^ 0x10);
    ASSERT_TRUE(atomicWriteFile(dir_ + "/journal.wal", journal));

    const auto orig = originalRecords();
    EnrollmentDb db(cfg_);
    ASSERT_TRUE(db.open());
    // The rotted entry is skipped; every later entry still replays.
    EXPECT_EQ(db.replayedEntries(), orig.size() - 1);
    verifyNoJunk();
}

TEST_F(JournalTailFuzz, RandomTailBytesNeverLoadJunk)
{
    Rng rng(0xBEEF);
    for (int iter = 0; iter < 20; ++iter) {
        SetUp();
        seedJournal();
        std::ofstream out(dir_ + "/journal.wal",
                          std::ios::binary | std::ios::app);
        const int n = 1 + static_cast<int>(rng.uniformInt(60));
        for (int i = 0; i < n; ++i)
            out.put(static_cast<char>(rng.uniformInt(256)));
        out.close();
        verifyNoJunk();
    }
}

} // namespace
} // namespace divot::store
