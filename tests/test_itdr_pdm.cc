/**
 * @file
 * Tests for the PDM schedule: Vernier level structure, periodicity in
 * the trigger index, and the degenerate fixed-reference mode.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "itdr/pdm.hh"

namespace divot {
namespace {

constexpr double kFs = 156.25e6;

TEST(PdmSchedule, DisabledGivesFixedReference)
{
    PdmConfig cfg;
    cfg.enabled = false;
    cfg.fixedReference = 1.5e-3;
    PdmSchedule pdm(cfg, kFs);
    EXPECT_EQ(pdm.levelCount(), 1u);
    EXPECT_DOUBLE_EQ(pdm.referenceAt(0.0), 1.5e-3);
    EXPECT_DOUBLE_EQ(pdm.referenceAt(1.23e-6), 1.5e-3);
    EXPECT_DOUBLE_EQ(pdm.modulationFrequency(), 0.0);
    const auto levels = pdm.levelsAt(0.5e-9);
    ASSERT_EQ(levels.size(), 1u);
    EXPECT_DOUBLE_EQ(levels[0], 1.5e-3);
}

TEST(PdmSchedule, ModulationFrequencyFromVernierRatio)
{
    PdmConfig cfg;  // defaults: p=17, q=18
    PdmSchedule pdm(cfg, kFs);
    EXPECT_NEAR(pdm.modulationFrequency(),
                kFs * static_cast<double>(cfg.q) /
                    static_cast<double>(cfg.p), 1.0);
    EXPECT_EQ(pdm.levelCount(), cfg.p);
}

TEST(PdmSchedule, ReferencePeriodicInPTriggers)
{
    PdmConfig cfg;
    PdmSchedule pdm(cfg, kFs);
    const double t_s = 1.0 / kFs;
    const double t0 = 0.8e-9;
    for (unsigned r = 0; r < 5; ++r) {
        const double a = pdm.referenceAt(r * t_s + t0);
        const double b =
            pdm.referenceAt((r + cfg.p) * t_s + t0);
        EXPECT_NEAR(a, b, 1e-12);
    }
}

TEST(PdmSchedule, LevelsMatchReferencesAtConsecutiveTriggers)
{
    PdmConfig cfg;
    PdmSchedule pdm(cfg, kFs);
    const double t_s = 1.0 / kFs;
    const double t0 = 1.7e-9;
    const auto levels = pdm.levelsAt(t0);
    ASSERT_EQ(levels.size(), cfg.p);
    for (unsigned r = 0; r < cfg.p; ++r)
        EXPECT_NEAR(levels[r], pdm.referenceAt(r * t_s + t0), 1e-12);
}

TEST(PdmSchedule, LevelsDistinctAtGenericOffset)
{
    PdmConfig cfg;
    PdmSchedule pdm(cfg, kFs);
    const auto levels = pdm.levelsAt(0.9e-9);
    std::set<long> distinct;
    for (double v : levels)
        distinct.insert(std::lround(v * 1e12));
    EXPECT_EQ(distinct.size(), cfg.p);
}

TEST(PdmSchedule, LevelsBoundedByAmplitude)
{
    PdmConfig cfg;
    PdmSchedule pdm(cfg, kFs);
    for (double t0 = 0.0; t0 < 4e-9; t0 += 0.33e-9) {
        for (double v : pdm.levelsAt(t0)) {
            EXPECT_LE(std::fabs(v - cfg.center),
                      cfg.amplitude + 1e-12);
        }
    }
}

TEST(PdmSchedule, NonCoprimeConfigRejected)
{
    PdmConfig bad;
    bad.p = 4;
    bad.q = 6;
    EXPECT_DEATH(PdmSchedule(bad, kFs), "coprime");
}

TEST(PdmSchedule, BadClockRejected)
{
    // A zero clock makes the derived triangle frequency invalid
    // before the schedule's own clock check can run.
    EXPECT_DEATH(PdmSchedule(PdmConfig{}, 0.0), "frequency");
}

} // namespace
} // namespace divot
