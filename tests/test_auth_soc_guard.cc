/**
 * @file
 * Tests for the SoC-scale guard: channel fleet management, aggregate
 * security state, and shared-resource economics.
 */

#include <gtest/gtest.h>

#include "auth/soc_guard.hh"
#include "txline/manufacturing.hh"
#include "txline/tamper.hh"

namespace divot {
namespace {

TransmissionLine
fabBus(uint64_t seed, double length = 0.08)
{
    ProcessParams params;
    ManufacturingProcess fab(params, Rng(seed));
    auto z = fab.drawImpedanceProfile(length, 0.5e-3);
    return TransmissionLine(std::move(z), 0.5e-3, params.velocity,
                            50.0, 50.3, params.lossNeperPerMeter,
                            "soc" + std::to_string(seed));
}

SocGuard
makeGuard(uint64_t seed = 1)
{
    return SocGuard(AuthConfig{}, ItdrConfig{}, Rng(seed));
}

TEST(SocGuard, AttachAndEnumerate)
{
    auto guard = makeGuard();
    EXPECT_TRUE(guard.attachChannel("ddr0", fabBus(1), 4));
    EXPECT_TRUE(guard.attachChannel("pcie0", fabBus(2), 4));
    EXPECT_TRUE(guard.attachChannel("nvme0", fabBus(3), 4));
    ASSERT_EQ(guard.channelNames().size(), 3u);
    EXPECT_EQ(guard.channelNames()[0], "ddr0");
    EXPECT_EQ(guard.channel("pcie0").state(), AuthState::Monitoring);
}

TEST(SocGuard, DuplicateNameRefused)
{
    auto guard = makeGuard(2);
    EXPECT_TRUE(guard.attachChannel("ddr0", fabBus(1), 4));
    EXPECT_FALSE(guard.attachChannel("ddr0", fabBus(2), 4));
    EXPECT_EQ(guard.channelNames().size(), 1u);
}

TEST(SocGuard, FreshFleetIsTrusted)
{
    auto guard = makeGuard(3);
    guard.attachChannel("a", fabBus(1), 4);
    guard.attachChannel("b", fabBus(2), 4);
    const SocSecurityState s = guard.monitorAll({});
    EXPECT_EQ(s.channels, 2u);
    EXPECT_EQ(s.healthy, 2u);
    EXPECT_TRUE(s.chipTrusted);
}

TEST(SocGuard, TamperOnOneChannelBreaksChipTrust)
{
    auto guard = makeGuard(4);
    const auto ddr = fabBus(1);
    const auto pcie = fabBus(2);
    guard.attachChannel("ddr0", ddr, 8);
    guard.attachChannel("pcie0", pcie, 8);

    WireTap tap(0.5, 50.0);
    std::map<std::string, TransmissionLine> current;
    current.emplace("pcie0", tap.apply(pcie));

    SocSecurityState s{};
    for (int i = 0; i < 16; ++i)
        s = guard.monitorAll(current);
    EXPECT_FALSE(s.chipTrusted);
    EXPECT_EQ(s.tampered, 1u);
    EXPECT_EQ(s.healthy, 1u);
    // The untouched channel keeps passing.
    EXPECT_EQ(guard.channel("ddr0").state(), AuthState::Monitoring);
    EXPECT_EQ(guard.channel("pcie0").state(), AuthState::TamperAlert);
}

TEST(SocGuard, SwappedChannelReportsMismatchOrTamper)
{
    auto guard = makeGuard(5);
    const auto bus = fabBus(1);
    guard.attachChannel("ddr0", bus, 8);
    std::map<std::string, TransmissionLine> current;
    current.emplace("ddr0", fabBus(99));
    SocSecurityState s{};
    for (int i = 0; i < 16; ++i)
        s = guard.monitorAll(current);
    EXPECT_FALSE(s.chipTrusted);
    EXPECT_EQ(s.healthy, 0u);
    EXPECT_EQ(s.mismatched + s.tampered, 1u);
}

TEST(SocGuard, SharedResourceEconomics)
{
    auto guard = makeGuard(6);
    for (int i = 0; i < 8; ++i) {
        guard.attachChannel("ch" + std::to_string(i),
                            fabBus(10 + i), 2);
    }
    const ResourceEstimate est = guard.resourceReport();
    const unsigned total = guard.totalRegisters();
    // Eight channels cost far less than eight standalone instances.
    EXPECT_LT(total, 8u * est.totalRegisters);
    // But more than one instance.
    EXPECT_GT(total, est.totalRegisters);
    EXPECT_GT(guard.totalLuts(), est.totalLuts);
}

TEST(SocGuard, UnknownChannelFatal)
{
    auto guard = makeGuard(7);
    guard.attachChannel("a", fabBus(1), 2);
    EXPECT_DEATH(guard.monitorChannel("ghost", fabBus(1)),
                 "unknown SoC channel");
    EXPECT_DEATH(guard.channel("ghost"), "unknown SoC channel");
}

} // namespace
} // namespace divot
