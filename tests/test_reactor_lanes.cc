/**
 * @file
 * Tests for the sharded reactor lanes: partitioning the store-backed
 * hydration drain across `FleetConfig::reactorLanes` lane reactors
 * must be invisible in every probe verdict, every fused verdict, the
 * stable telemetry export, and the mega-fleet digest — at any thread
 * count, with and without injected storage faults. The lane count is
 * a performance knob, never a semantic one.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault.hh"
#include "fleet/channel_scheduler.hh"
#include "fleet/megafleet.hh"
#include "store/enrollment_db.hh"
#include "store/io.hh"

namespace divot {
namespace {

BusChannelConfig
quickChannel(std::size_t index)
{
    BusChannelConfig cfg;
    cfg.lineLength = 0.1; // keep tests fast
    cfg.enrollReps = 8;
    cfg.name = "wire" + std::to_string(index);
    return cfg;
}

std::string
freshDbDir(const std::string &name)
{
    const std::string dir = std::string(::testing::TempDir()) + name;
    store::ensureDir(dir);
    for (unsigned s = 0; s < 16; ++s) {
        const std::string shard =
            dir + "/shard-" + std::to_string(s) + ".bin";
        store::removeFile(shard);
        store::removeFile(shard + ".tmp");
    }
    store::removeFile(dir + "/journal.wal");
    return dir;
}

store::EnrollmentDbConfig
dbConfig(const std::string &dir)
{
    store::EnrollmentDbConfig cfg;
    cfg.directory = dir;
    cfg.shards = 4;
    cfg.overlayFlushRecords = 2;
    return cfg;
}

/** One store-backed fleet run: per-tick rounds + stable export. */
struct LaneRun
{
    std::vector<FleetRound> rounds;
    std::string stableExport;
    int64_t queuePeak = 0;
};

LaneRun
runLanes(const std::string &tag, unsigned lanes, unsigned threads,
         int ticks, const FaultInjector *injector = nullptr,
         const std::vector<std::string> &eraseFirst = {})
{
    FleetConfig cfg;
    cfg.instruments = 2;
    cfg.policy = SchedulerPolicy::RoundRobin;
    cfg.threads = threads;
    cfg.reactorLanes = lanes;
    ChannelScheduler fleet(cfg, Rng(42));
    for (std::size_t c = 0; c < 6; ++c)
        fleet.addChannel(quickChannel(c));
    fleet.calibrateAll();

    const std::string dir = freshDbDir(
        tag + "_l" + std::to_string(lanes) + "_t" +
        std::to_string(threads));
    store::EnrollmentDb db(dbConfig(dir));
    if (injector != nullptr)
        db.attachFaultInjector(injector);
    EXPECT_TRUE(db.open());
    // Tiny budget: every unpinned enrollment evicts each tick, so
    // every tick drains a full hydration wave through the lanes.
    fleet.attachStore(&db, 1);
    for (const std::string &id : eraseFirst) {
        EXPECT_TRUE(db.erase(id));
        // Drop the resident copy too so the loss surfaces as a failed
        // hydration, not a quiet in-memory hit.
        for (std::size_t c = 0; c < 6; ++c)
            if (fleet.channel(c).name() == id)
                fleet.channel(c).releaseEnrollment();
    }

    LaneRun run;
    for (int t = 0; t < ticks; ++t)
        run.rounds.push_back(fleet.tick());
    run.stableExport = fleet.telemetry().exportJson();
    run.queuePeak = fleet.telemetry().registry().gaugeValue(
        "fleet.reactor.queue.peak");
    return run;
}

void
expectSameRounds(const LaneRun &a, const LaneRun &b)
{
    ASSERT_EQ(a.rounds.size(), b.rounds.size());
    for (std::size_t t = 0; t < a.rounds.size(); ++t) {
        const FleetRound &ra = a.rounds[t];
        const FleetRound &rb = b.rounds[t];
        ASSERT_EQ(ra.probes.size(), rb.probes.size()) << "tick " << t;
        for (std::size_t p = 0; p < ra.probes.size(); ++p) {
            EXPECT_EQ(ra.probes[p].channel, rb.probes[p].channel)
                << "tick " << t << " probe " << p;
            EXPECT_EQ(ra.probes[p].verdict.similarity,
                      rb.probes[p].verdict.similarity)
                << "tick " << t << " probe " << p;
        }
        EXPECT_EQ(ra.fused.fusedSimilarity, rb.fused.fusedSimilarity)
            << "tick " << t;
        EXPECT_EQ(ra.fused.busTrusted, rb.fused.busTrusted);
        EXPECT_EQ(ra.fused.pendingReenrollWires,
                  rb.fused.pendingReenrollWires);
    }
}

TEST(ReactorLanes, VerdictsInvariantAcrossLaneAndThreadCounts)
{
    const LaneRun base = runLanes("lanes_clean", 1, 1, 8);
    for (unsigned lanes : {2u, 4u}) {
        for (unsigned threads : {1u, 4u}) {
            const LaneRun run =
                runLanes("lanes_clean", lanes, threads, 8);
            expectSameRounds(base, run);
            EXPECT_EQ(base.stableExport, run.stableExport)
                << "lanes " << lanes << " threads " << threads;
        }
    }
}

TEST(ReactorLanes, QueuePeakGaugeIsLaneInvariant)
{
    // The queued-event population is the same whether it sits in one
    // reactor or partitioned across K — the stable peak gauge must
    // not see the partition.
    const LaneRun one = runLanes("lanes_peak", 1, 1, 6);
    const LaneRun four = runLanes("lanes_peak", 4, 4, 6);
    EXPECT_GT(one.queuePeak, 0);
    EXPECT_EQ(one.queuePeak, four.queuePeak);
}

TEST(ReactorLanes, LostRecordDemotionOrderIsLaneInvariant)
{
    // Two wires lose their durable records before the first tick;
    // both demotions (and the "store.lost" fencing events they emit)
    // must land identically whichever lane discovers them.
    const std::vector<std::string> lost = {"wire1", "wire4"};
    const LaneRun base = runLanes("lanes_lost", 1, 1, 8, nullptr, lost);
    // pendingReenrollWires reports the currently-fenced population;
    // by the last round both losses have been discovered and fenced.
    EXPECT_EQ(base.rounds.back().fused.pendingReenrollWires,
              lost.size());
    for (unsigned lanes : {2u, 4u}) {
        const LaneRun run =
            runLanes("lanes_lost", lanes, 4, 8, nullptr, lost);
        expectSameRounds(base, run);
        EXPECT_EQ(base.stableExport, run.stableExport)
            << "lanes " << lanes;
    }
}

TEST(ReactorLanes, FaultedHydrationIsLaneInvariant)
{
    // Storage bit rot lands on shard images during enrollment; the
    // damaged-image salvage (or demotion) a lane performs must match
    // the single-reactor run bit for bit.
    FaultPlan plan;
    plan.storageBitRot(3, 4, 6.0).storageBitRot(9, 3, 4.0);
    const FaultInjector injector(plan, Rng(17));
    const LaneRun base =
        runLanes("lanes_fault", 1, 1, 8, &injector);
    for (unsigned lanes : {2u, 4u}) {
        for (unsigned threads : {1u, 4u}) {
            const LaneRun run =
                runLanes("lanes_fault", lanes, threads, 8, &injector);
            expectSameRounds(base, run);
            EXPECT_EQ(base.stableExport, run.stableExport)
                << "lanes " << lanes << " threads " << threads;
        }
    }
}

TEST(ReactorLanes, MegaFleetDigestIsLaneInvariant)
{
    auto digest = [](const char *name, unsigned threads,
                     unsigned lanes) {
        MegaFleetConfig cfg;
        cfg.channels = 96;
        cfg.fingerprintBins = 8;
        cfg.probesPerTick = 16;
        cfg.threads = threads;
        cfg.reactorLanes = lanes;
        cfg.store.directory =
            freshDbDir(std::string("lanes_mega_") + name);
        cfg.store.shards = 8;
        cfg.store.overlayFlushRecords = 8;
        cfg.store.shardCacheBytes = 1u << 20;
        cfg.telemetry.enabled = false;
        MegaFleet fleet(cfg, Rng(21));
        EXPECT_EQ(fleet.enrollAll(), 96u);
        return fleet.run(8).verdictDigest;
    };
    const uint64_t one = digest("s1", 1, 1);
    EXPECT_NE(one, 0u);
    EXPECT_EQ(one, digest("l4", 1, 4));
    EXPECT_EQ(one, digest("p4", 0, 4));
    EXPECT_EQ(one, digest("p8", 0, 8));
}

} // namespace
} // namespace divot
