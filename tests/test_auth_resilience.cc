/**
 * @file
 * Tests for the authenticator's resilience machinery: vote-confirmed
 * alarms under transient faults, warmup-slack threshold math, retry
 * with backoff, the degradation ladder (Monitoring -> Degraded ->
 * Quarantine -> recovery), and the quarantine reaction.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "auth/authenticator.hh"
#include "auth/reaction.hh"
#include "fault/fault.hh"
#include "telemetry/telemetry.hh"
#include "txline/manufacturing.hh"
#include "txline/tamper.hh"

namespace divot {
namespace {

TransmissionLine
fabLine(uint64_t seed)
{
    ProcessParams params;
    ManufacturingProcess fab(params, Rng(seed));
    auto z = fab.drawImpedanceProfile(0.15, 0.5e-3);
    return TransmissionLine(std::move(z), 0.5e-3, params.velocity,
                            50.0, 50.25, params.lossNeperPerMeter,
                            "resilience-line");
}

TEST(AuthResilience, TransientSpikeSuppressedByVoting)
{
    // A one-measurement offset spike lands on round 1's measurement
    // (the window is at its smallest, the threshold at its most
    // forgiving multiple, and a single spike dominates the average).
    FaultPlan plan;
    plan.offsetDrift(0, 1, 5e-3);

    Authenticator auth(AuthConfig{}, ItdrConfig{}, Rng(21), "voted");
    const auto line = fabLine(21);
    auth.enroll(line, 8);
    FaultInjector inj(plan, Rng(77));
    auth.attachFaultInjector(&inj);

    bool suppressed = false;
    for (int i = 0; i < 6; ++i) {
        const AuthVerdict v = auth.checkRound(line);
        EXPECT_FALSE(v.tamperAlarm) << "round " << v.round;
        suppressed = suppressed || v.alarmSuppressed;
    }
    EXPECT_TRUE(suppressed);
    EXPECT_GE(auth.suppressedAlarms(), 1u);
    EXPECT_EQ(auth.state(), AuthState::Monitoring);
}

TEST(AuthResilience, SameSpikeAlarmsWithoutVoting)
{
    FaultPlan plan;
    plan.offsetDrift(0, 1, 5e-3);

    AuthConfig cfg;
    cfg.confirmWindow = 0;  // legacy alarm-on-first-trip
    Authenticator auth(cfg, ItdrConfig{}, Rng(21), "single");
    const auto line = fabLine(21);
    auth.enroll(line, 8);
    FaultInjector inj(plan, Rng(77));
    auth.attachFaultInjector(&inj);

    const AuthVerdict v = auth.checkRound(line);
    EXPECT_TRUE(v.tamperAlarm);
    EXPECT_EQ(auth.state(), AuthState::TamperAlert);
}

TEST(AuthResilience, GenuineAttackConfirmedByVotes)
{
    Authenticator auth(AuthConfig{}, ItdrConfig{}, Rng(22), "attack");
    const auto line = fabLine(22);
    auth.enroll(line, 16);
    const auto attacked = MagneticProbe(0.5).apply(line);

    AuthVerdict alarm{};
    for (int i = 0; i < 16 && !alarm.tamperAlarm; ++i)
        alarm = auth.checkRound(attacked);
    ASSERT_TRUE(alarm.tamperAlarm);
    // The alarm passed confirmation: a real attack trips the fresh
    // single-shot votes too.
    EXPECT_GE(alarm.votesFor, AuthConfig{}.confirmVotes);
    EXPECT_EQ(auth.state(), AuthState::TamperAlert);
}

TEST(AuthResilience, WarmupSlackThresholdSchedule)
{
    AuthConfig cfg;
    Authenticator auth(cfg, ItdrConfig{}, Rng(23), "warmup");
    const auto line = fabLine(23);
    auth.enroll(line, 8);

    // While the FIFO refills, the effective bar follows
    // tamperThreshold * (1 + slack / n), n = rounds accumulated.
    for (unsigned r = 1; r <= cfg.averageWindow + 3; ++r) {
        const AuthVerdict v = auth.checkRound(line);
        const unsigned n = std::min<unsigned>(
            r, static_cast<unsigned>(cfg.averageWindow));
        const double expected = cfg.tamperThreshold *
            (1.0 + cfg.warmupSlack / static_cast<double>(n));
        EXPECT_NEAR(v.thresholdUsed, expected, expected * 1e-12)
            << "round " << r;
    }
}

TEST(AuthResilience, UnhealthyMeasurementRetriesThenRecovers)
{
    // Stuck comparator for exactly one measurement: the first attempt
    // fails its saturation screen, the retry is clean.
    FaultPlan plan;
    plan.comparatorStuck(0, 1, true);

    Authenticator auth(AuthConfig{}, ItdrConfig{}, Rng(24), "retry");
    const auto line = fabLine(24);
    auth.enroll(line, 8);
    const uint64_t cycles_before = auth.busCyclesConsumed();
    FaultInjector inj(plan, Rng(5));
    auth.attachFaultInjector(&inj);

    const AuthVerdict v = auth.checkRound(line);
    EXPECT_EQ(v.retries, 1u);
    EXPECT_TRUE(v.instrumentHealthy);
    EXPECT_TRUE(v.authenticated);
    EXPECT_FALSE(v.tamperAlarm);
    // Two measurements plus the backoff yield were paid for.
    EXPECT_GT(auth.busCyclesConsumed() - cycles_before,
              AuthConfig{}.retryBackoffCycles);
}

TEST(AuthResilience, LadderDescendsToQuarantineAndRecovers)
{
    AuthConfig cfg;
    // Rounds 1-5 burn (1 + maxRetries) = 3 unhealthy measurements
    // each; the fault covers exactly those 15 so quarantine probes
    // measure clean.
    FaultPlan plan;
    plan.comparatorStuck(0, 5 * (1 + cfg.maxRetries), true);

    Authenticator auth(cfg, ItdrConfig{}, Rng(25), "ladder");
    const auto line = fabLine(25);
    auth.enroll(line, 8);
    FaultInjector inj(plan, Rng(6));
    auth.attachFaultInjector(&inj);

    std::vector<AuthVerdict> verdicts;
    for (int r = 0; r < 11; ++r)
        verdicts.push_back(auth.checkRound(line));

    // Descent: stale trust, then Degraded, then Quarantine.
    EXPECT_FALSE(verdicts[0].instrumentHealthy);
    EXPECT_TRUE(verdicts[0].authenticated);
    EXPECT_EQ(verdicts[0].stateAfter, AuthState::Monitoring);
    EXPECT_EQ(verdicts[1].stateAfter, AuthState::Degraded);
    EXPECT_EQ(verdicts[3].stateAfter, AuthState::Degraded);
    EXPECT_EQ(verdicts[4].stateAfter, AuthState::Quarantine);
    EXPECT_FALSE(verdicts[4].authenticated);

    // Quarantine: access fenced while the recalibrated instrument
    // proves itself healthy for recoveryCleanRounds rounds.
    EXPECT_EQ(verdicts[5].stateAfter, AuthState::Quarantine);
    EXPECT_FALSE(verdicts[5].authenticated);
    EXPECT_TRUE(verdicts[5].instrumentHealthy);
    EXPECT_EQ(verdicts[7].stateAfter, AuthState::Degraded);

    // Degraded rounds run at the raised threshold, then trust is
    // restored after another clean streak.
    EXPECT_TRUE(verdicts[8].authenticated);
    EXPECT_NEAR(verdicts[8].thresholdUsed,
                cfg.tamperThreshold * (1.0 + cfg.warmupSlack) *
                    cfg.degradedThresholdScale,
                1e-18);
    EXPECT_EQ(verdicts[10].stateAfter, AuthState::Monitoring);
    EXPECT_EQ(auth.state(), AuthState::Monitoring);
}

TEST(AuthResilience, QuarantineFencesAccessWithoutAlarm)
{
    AuthVerdict v;
    v.authenticated = false;
    v.stateAfter = AuthState::Quarantine;
    v.round = 7;

    ReactionPolicy cpu(BusRole::Cpu);
    EXPECT_EQ(cpu.decide(v), ReactionAction::StallRetry);
    ASSERT_EQ(cpu.events().size(), 1u);
    EXPECT_NE(cpu.events()[0].detail.find("quarantined"),
              std::string::npos);
    EXPECT_EQ(cpu.alarmCount(), 0u);

    ReactionPolicy mem(BusRole::Memory);
    EXPECT_EQ(mem.decide(v), ReactionAction::BlockAccess);

    // A suppressed candidate alarm proceeds but is tallied.
    AuthVerdict ok;
    ok.authenticated = true;
    ok.alarmSuppressed = true;
    ok.stateAfter = AuthState::Monitoring;
    EXPECT_EQ(cpu.decide(ok), ReactionAction::Proceed);
    EXPECT_EQ(cpu.suppressedCount(), 1u);
}

TEST(AuthResilience, RecoveryExpungesStaleVotesFromWindow)
{
    // Regression: a transient spike that slides into the averaging
    // window while the ladder sits below Monitoring used to survive
    // the climb back to full trust — the recovery path never scrubbed
    // the FIFO, so the stale entry kept poisoning Monitoring-grade
    // averages until it aged out. The climb must expunge it.
    AuthConfig cfg;
    cfg.averageWindow = 4;
    cfg.maxRetries = 0;             // one measurement per round
    cfg.degradeAfterUnhealthy = 1;
    cfg.quarantineAfterUnhealthy = 2;
    cfg.recoveryCleanRounds = 2;

    // Round 1-2: stuck comparator (indices 0-1) drops the ladder to
    // Quarantine. Round 5 (first Degraded round after the quarantine
    // probes at indices 2-3): an offset spike at index 4 lands in the
    // freshly cleared window. It is too small to trip the Degraded
    // candidate bar, so voting never examines it — only the recovery
    // scrub can remove it.
    FaultPlan plan;
    plan.comparatorStuck(0, 2, true);
    plan.offsetDrift(4, 1, 1.1e-3);

    Authenticator auth(cfg, ItdrConfig{}, Rng(31), "expunge");
    const auto line = fabLine(31);
    auth.enroll(line, 8);

    Telemetry telemetry{TelemetryConfig{}};
    auth.attachTelemetry(&telemetry);
    FaultInjector inj(plan, Rng(9));
    auth.attachFaultInjector(&inj);

    std::vector<AuthVerdict> verdicts;
    for (int r = 0; r < 8; ++r)
        verdicts.push_back(auth.checkRound(line));

    // Descent and recovery shape.
    EXPECT_EQ(verdicts[0].stateAfter, AuthState::Degraded);
    EXPECT_EQ(verdicts[1].stateAfter, AuthState::Quarantine);
    EXPECT_EQ(verdicts[3].stateAfter, AuthState::Degraded);
    EXPECT_EQ(verdicts[5].stateAfter, AuthState::Monitoring);

    // The spiked round itself passes quietly in Degraded: the raised
    // bar ignores it, no alarm and no vote.
    EXPECT_FALSE(verdicts[4].tamperAlarm) << verdicts[4].peakError;
    EXPECT_FALSE(verdicts[4].alarmSuppressed);
    EXPECT_EQ(verdicts[4].votesCast, 0u);

    // The climb back to Monitoring scrubbed the stale spike.
    EXPECT_GE(auth.expungedVotes(), 1u);

    // With the window clean, full-trust rounds stay quiet.
    for (int r = 6; r < 8; ++r) {
        EXPECT_TRUE(verdicts[r].authenticated) << "round " << r;
        EXPECT_FALSE(verdicts[r].tamperAlarm) << "round " << r;
        EXPECT_FALSE(verdicts[r].alarmSuppressed) << "round " << r;
    }
    EXPECT_EQ(auth.state(), AuthState::Monitoring);
    EXPECT_EQ(auth.suppressedAlarms(), 0u);

    // The ladder and the scrub are observable through telemetry.
    const Registry &reg = telemetry.registry();
    EXPECT_EQ(reg.counterValue("auth.expunge.expunged"),
              auth.expungedVotes());
    EXPECT_EQ(reg.counterValue("auth.expunge.state.to.quarantine"), 1u);
    EXPECT_EQ(reg.counterValue("auth.expunge.state.to.degraded"), 2u);
    EXPECT_EQ(reg.counterValue("auth.expunge.state.to.monitoring"), 1u);
    EXPECT_EQ(reg.counterValue("auth.expunge.rounds"), 8u);
    EXPECT_EQ(reg.counterValue("auth.expunge.recalibrations"), 2u);
    EXPECT_EQ(reg.counterValue("auth.expunge.unhealthy_rounds"), 2u);
}

TEST(AuthResilience, ResilienceConfigValidation)
{
    AuthConfig bad;
    bad.confirmVotes = 5;
    bad.confirmWindow = 3;
    EXPECT_DEATH(Authenticator(bad, ItdrConfig{}, Rng(1), "x"),
                 "confirmVotes");
    AuthConfig bad2;
    bad2.quarantineAfterUnhealthy = 1;
    bad2.degradeAfterUnhealthy = 3;
    EXPECT_DEATH(Authenticator(bad2, ItdrConfig{}, Rng(2), "x"),
                 "ladder");
    AuthConfig bad3;
    bad3.degradedThresholdScale = 0.5;
    EXPECT_DEATH(Authenticator(bad3, ItdrConfig{}, Rng(3), "x"),
                 "degradedThresholdScale");
}

} // namespace
} // namespace divot
