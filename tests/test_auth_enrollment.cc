/**
 * @file
 * Tests for the EPROM-model enrollment store and its binary
 * persistence with integrity checking.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>

#include "auth/enrollment.hh"

namespace divot {
namespace {

Fingerprint
dummyFingerprint(double seed)
{
    Waveform raw(1e-12, {seed, seed + 1.0, seed + 2.0});
    Waveform residual(1e-12, {0.1, -0.2, 0.1});
    return Fingerprint::fromParts(raw, residual,
                                  "fp" + std::to_string(seed));
}

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

TEST(EnrollmentStore, EnrollAndLookup)
{
    EnrollmentStore store;
    EXPECT_TRUE(store.enroll("dimm0.clk", dummyFingerprint(1.0)));
    EXPECT_TRUE(store.contains("dimm0.clk"));
    EXPECT_FALSE(store.contains("dimm1.clk"));
    const auto fp = store.lookup("dimm0.clk");
    ASSERT_TRUE(fp.has_value());
    EXPECT_EQ(fp->label(), "fp1.000000");
    EXPECT_EQ(store.size(), 1u);
}

TEST(EnrollmentStore, MissingLookupIsEmpty)
{
    EnrollmentStore store;
    EXPECT_FALSE(store.lookup("ghost").has_value());
}

TEST(EnrollmentStore, RefusesSilentOverwrite)
{
    EnrollmentStore store;
    EXPECT_TRUE(store.enroll("ch", dummyFingerprint(1.0)));
    EXPECT_FALSE(store.enroll("ch", dummyFingerprint(2.0)));
    EXPECT_DOUBLE_EQ(store.lookup("ch")->raw()[0], 1.0);
    EXPECT_TRUE(store.enroll("ch", dummyFingerprint(2.0), true));
    EXPECT_DOUBLE_EQ(store.lookup("ch")->raw()[0], 2.0);
}

TEST(EnrollmentStore, SaveLoadRoundtrip)
{
    const std::string path = tmpPath("store_roundtrip.bin");
    EnrollmentStore store;
    store.enroll("a", dummyFingerprint(1.0));
    store.enroll("b", dummyFingerprint(5.0));
    ASSERT_TRUE(store.saveToFile(path));

    EnrollmentStore loaded;
    ASSERT_TRUE(loaded.loadFromFile(path));
    EXPECT_EQ(loaded.size(), 2u);
    const auto a = loaded.lookup("a");
    ASSERT_TRUE(a.has_value());
    EXPECT_DOUBLE_EQ(a->raw()[2], 3.0);
    EXPECT_DOUBLE_EQ(a->residual()[1], -0.2);
    EXPECT_DOUBLE_EQ(a->raw().dt(), 1e-12);
    std::remove(path.c_str());
}

TEST(EnrollmentStore, LoadMissingFileFails)
{
    EnrollmentStore store;
    EXPECT_FALSE(store.loadFromFile("/nonexistent/path/store.bin"));
}

TEST(EnrollmentStore, CorruptedBankAFallsBackToBankB)
{
    const std::string path = tmpPath("store_corrupt.bin");
    EnrollmentStore store;
    store.enroll("a", dummyFingerprint(1.0));
    ASSERT_TRUE(store.saveToFile(path));

    // Flip a byte inside bank A's payload: the dual-bank image must
    // recover from the untouched copy at the end of the file.
    std::fstream f(path, std::ios::in | std::ios::out |
                             std::ios::binary);
    f.seekp(40);
    char c;
    f.seekg(40);
    f.get(c);
    f.seekp(40);
    f.put(static_cast<char>(c ^ 0x5a));
    f.close();

    EnrollmentStore loaded;
    const EpromLoadReport rep = loaded.loadWithReport(path, false);
    EXPECT_TRUE(rep.ok);
    EXPECT_TRUE(rep.fellBack);
    EXPECT_EQ(rep.bankUsed, 1);
    ASSERT_TRUE(loaded.contains("a"));
    EXPECT_DOUBLE_EQ(loaded.lookup("a")->raw()[2], 3.0);
    std::remove(path.c_str());
}

TEST(EnrollmentStore, BothBanksDamagedRejected)
{
    const std::string path = tmpPath("store_corrupt2.bin");
    EnrollmentStore store;
    store.enroll("a", dummyFingerprint(1.0));
    ASSERT_TRUE(store.saveToFile(path));

    // Damage both copies: one byte in bank A's payload and one in
    // bank B's (the mirrored payload near the end of the file).
    std::fstream f(path, std::ios::in | std::ios::out |
                             std::ios::binary);
    f.seekg(0, std::ios::end);
    const long size = static_cast<long>(f.tellg());
    for (long pos : {40L, size - 40L}) {
        char c;
        f.seekg(pos);
        f.get(c);
        f.seekp(pos);
        f.put(static_cast<char>(c ^ 0x5a));
    }
    f.close();

    EnrollmentStore loaded;
    loaded.enroll("keep", dummyFingerprint(9.0));
    EXPECT_FALSE(loaded.loadFromFile(path));
    // Failed load must not clobber existing contents.
    EXPECT_TRUE(loaded.contains("keep"));
    EXPECT_EQ(loaded.size(), 1u);
    std::remove(path.c_str());
}

TEST(EnrollmentStore, ScrubRewritesImageAfterFallback)
{
    const std::string path = tmpPath("store_scrub.bin");
    EnrollmentStore store;
    store.enroll("a", dummyFingerprint(1.0));
    ASSERT_TRUE(store.saveToFile(path));

    std::fstream f(path, std::ios::in | std::ios::out |
                             std::ios::binary);
    f.seekp(30);
    f.put('\x7f');
    f.close();

    EnrollmentStore loaded;
    const EpromLoadReport rep = loaded.loadWithReport(path, true);
    EXPECT_TRUE(rep.ok);
    EXPECT_TRUE(rep.fellBack);
    EXPECT_TRUE(rep.scrubbed);

    // After the scrub, bank A is pristine again.
    EnrollmentStore reloaded;
    const EpromLoadReport rep2 = reloaded.loadWithReport(path, false);
    EXPECT_TRUE(rep2.ok);
    EXPECT_FALSE(rep2.fellBack);
    EXPECT_EQ(rep2.bankUsed, 0);
    std::remove(path.c_str());
}

TEST(EnrollmentStore, BadMagicRejected)
{
    const std::string path = tmpPath("store_magic.bin");
    std::ofstream out(path, std::ios::binary);
    const std::string junk(64, 'x');
    out.write(junk.data(), static_cast<long>(junk.size()));
    out.close();
    EnrollmentStore store;
    EXPECT_FALSE(store.loadFromFile(path));
    std::remove(path.c_str());
}

TEST(EnrollmentStore, SeverelyTruncatedFileRejected)
{
    const std::string path = tmpPath("store_trunc.bin");
    EnrollmentStore store;
    store.enroll("a", dummyFingerprint(1.0));
    ASSERT_TRUE(store.saveToFile(path));
    // Cut deep into bank A with bank B's trailer gone: nothing left
    // to recover from.
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<long>(bytes.size() / 4));
    out.close();
    EnrollmentStore loaded;
    EXPECT_FALSE(loaded.loadFromFile(path));
    std::remove(path.c_str());
}

TEST(EnrollmentStore, CorruptionFuzzEveryOffset)
{
    // Exhaustive single-event corruption: truncate the image at every
    // length and bit-flip every byte. Each trial must either recover
    // the original records exactly or fail and leave the in-memory
    // store untouched — never load garbage, never crash.
    const std::string path = tmpPath("store_fuzz.bin");
    EnrollmentStore store;
    store.enroll("a", dummyFingerprint(1.0));
    store.enroll("b", dummyFingerprint(5.0));
    ASSERT_TRUE(store.saveToFile(path));

    std::string image;
    {
        std::ifstream in(path, std::ios::binary);
        image.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    ASSERT_GT(image.size(), 48u);

    auto writeImage = [&](const std::string &bytes) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<long>(bytes.size()));
    };
    auto checkTrial = [&](const std::string &what, std::size_t pos) {
        EnrollmentStore loaded;
        loaded.enroll("sentinel", dummyFingerprint(9.0));
        const EpromLoadReport rep = loaded.loadWithReport(path, false);
        if (rep.ok) {
            ASSERT_EQ(loaded.size(), 2u) << what << " @ " << pos;
            ASSERT_TRUE(loaded.contains("a")) << what << " @ " << pos;
            ASSERT_TRUE(loaded.contains("b")) << what << " @ " << pos;
            ASSERT_DOUBLE_EQ(loaded.lookup("b")->raw()[0], 5.0)
                << what << " @ " << pos;
        } else {
            // Strong exception safety: prior contents intact.
            ASSERT_EQ(loaded.size(), 1u) << what << " @ " << pos;
            ASSERT_TRUE(loaded.contains("sentinel"))
                << what << " @ " << pos;
        }
    };

    // Truncation at every length (0 .. size-1).
    for (std::size_t len = 0; len < image.size(); ++len) {
        writeImage(image.substr(0, len));
        checkTrial("truncate", len);
    }

    // Bit flip at every byte. A single-byte flip damages exactly one
    // bank, so every one of these must recover.
    for (std::size_t pos = 0; pos < image.size(); ++pos) {
        std::string bad = image;
        bad[pos] = static_cast<char>(bad[pos] ^ 0x80);
        writeImage(bad);
        EnrollmentStore loaded;
        const EpromLoadReport rep = loaded.loadWithReport(path, false);
        ASSERT_TRUE(rep.ok) << "bit flip @ " << pos << ": "
                            << rep.detail;
        ASSERT_EQ(loaded.size(), 2u) << "bit flip @ " << pos;
        ASSERT_DOUBLE_EQ(loaded.lookup("a")->raw()[2], 3.0)
            << "bit flip @ " << pos;
    }
    std::remove(path.c_str());
}

TEST(EnrollmentStore, ClearEmpties)
{
    EnrollmentStore store;
    store.enroll("a", dummyFingerprint(1.0));
    store.clear();
    EXPECT_EQ(store.size(), 0u);
    EXPECT_FALSE(store.contains("a"));
}

TEST(EnrollmentStore, EnrollInvalidFingerprintFatal)
{
    EnrollmentStore store;
    Fingerprint invalid;
    EXPECT_DEATH(store.enroll("ch", invalid), "invalid");
}

namespace {

/** Read the whole image, apply `mutate`, write it back. */
void
editImage(const std::string &path,
          const std::function<void(std::string &)> &mutate)
{
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    mutate(bytes);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace

TEST(EnrollmentStore, ScrubCrashMidRewriteLeavesImageLoadable)
{
    const std::string path = tmpPath("store_scrub_crash.bin");
    EnrollmentStore store;
    store.enroll("a", dummyFingerprint(1.0));
    ASSERT_TRUE(store.saveToFile(path));
    editImage(path, [](std::string &bytes) {
        bytes[40] = static_cast<char>(bytes[40] ^ 0x5a);
    });

    // Power cut between writing the scrub temp file and the rename:
    // the original (bank-B-recoverable) image must survive intact.
    store::WriteFault cut;
    cut.crashBeforeRename = true;
    EnrollmentStore loaded;
    loaded.setSaveFault(cut);
    const EpromLoadReport rep = loaded.loadWithReport(path, true);
    EXPECT_TRUE(rep.ok);
    EXPECT_TRUE(rep.fellBack);
    EXPECT_FALSE(rep.scrubbed); // the rewrite did not commit
    EXPECT_TRUE(loaded.contains("a"));

    // A fresh reader still recovers everything from the old image.
    EnrollmentStore after;
    const EpromLoadReport rep2 = after.loadWithReport(path, false);
    EXPECT_TRUE(rep2.ok);
    EXPECT_TRUE(rep2.fellBack); // bank A damage is still there
    ASSERT_TRUE(after.contains("a"));
    EXPECT_DOUBLE_EQ(after.lookup("a")->raw()[2], 3.0);

    // Torn scrub write: same guarantee.
    store::WriteFault torn;
    torn.tornAfterBytes = 16;
    EnrollmentStore tornLoad;
    tornLoad.setSaveFault(torn);
    const EpromLoadReport rep3 = tornLoad.loadWithReport(path, true);
    EXPECT_TRUE(rep3.ok);
    EXPECT_FALSE(rep3.scrubbed);
    EnrollmentStore after3;
    EXPECT_TRUE(after3.loadWithReport(path, false).ok);

    // Without the fault the scrub commits and bank A heals.
    EnrollmentStore healer;
    const EpromLoadReport rep4 = healer.loadWithReport(path, true);
    EXPECT_TRUE(rep4.ok);
    EXPECT_TRUE(rep4.scrubbed);
    EnrollmentStore clean;
    const EpromLoadReport rep5 = clean.loadWithReport(path, false);
    EXPECT_TRUE(rep5.ok);
    EXPECT_FALSE(rep5.fellBack);
    EXPECT_EQ(rep5.bankUsed, 0);
    std::remove(path.c_str());
}

TEST(EnrollmentStore, FallbackReportsTheFailingRecord)
{
    const std::string path = tmpPath("store_diag.bin");
    EnrollmentStore store;
    store.enroll("a.ch", dummyFingerprint(1.0));
    store.enroll("b.ch", dummyFingerprint(2.0));
    ASSERT_TRUE(store.saveToFile(path));

    // Corrupt a byte inside record 1's body in bank A (the first
    // occurrence of its id lives in bank A's payload; +30 lands well
    // inside the record body, past the id bytes).
    editImage(path, [](std::string &bytes) {
        const std::size_t pos = bytes.find("b.ch");
        ASSERT_NE(pos, std::string::npos);
        bytes[pos + 30] = static_cast<char>(bytes[pos + 30] ^ 0x11);
    });

    EnrollmentStore loaded;
    const EpromLoadReport rep = loaded.loadWithReport(path, false);
    EXPECT_TRUE(rep.ok);
    EXPECT_TRUE(rep.fellBack);
    EXPECT_EQ(rep.failedRecordIndex, 1);
    EXPECT_GT(rep.failedRecordOffset, 0);
    EXPECT_EQ(rep.failedRecordId, "b.ch");
    EXPECT_NE(rep.detail.find("bank A record 1"), std::string::npos)
        << rep.detail;
    std::remove(path.c_str());
}

TEST(EnrollmentStore, HeaderDamageReportsBankLevelDetail)
{
    const std::string path = tmpPath("store_diag_hdr.bin");
    EnrollmentStore store;
    store.enroll("a", dummyFingerprint(1.0));
    ASSERT_TRUE(store.saveToFile(path));

    // Flip the whole-bank CRC field: no single record is at fault.
    editImage(path, [](std::string &bytes) {
        bytes[16] = static_cast<char>(bytes[16] ^ 0x01);
    });

    EnrollmentStore loaded;
    const EpromLoadReport rep = loaded.loadWithReport(path, false);
    EXPECT_TRUE(rep.ok);
    EXPECT_TRUE(rep.fellBack);
    EXPECT_EQ(rep.failedRecordIndex, -1);
    EXPECT_NE(rep.detail.find("bank A"), std::string::npos)
        << rep.detail;
    std::remove(path.c_str());
}

} // namespace
} // namespace divot
