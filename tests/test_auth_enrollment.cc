/**
 * @file
 * Tests for the EPROM-model enrollment store and its binary
 * persistence with integrity checking.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "auth/enrollment.hh"

namespace divot {
namespace {

Fingerprint
dummyFingerprint(double seed)
{
    Waveform raw(1e-12, {seed, seed + 1.0, seed + 2.0});
    Waveform residual(1e-12, {0.1, -0.2, 0.1});
    return Fingerprint::fromParts(raw, residual,
                                  "fp" + std::to_string(seed));
}

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

TEST(EnrollmentStore, EnrollAndLookup)
{
    EnrollmentStore store;
    EXPECT_TRUE(store.enroll("dimm0.clk", dummyFingerprint(1.0)));
    EXPECT_TRUE(store.contains("dimm0.clk"));
    EXPECT_FALSE(store.contains("dimm1.clk"));
    const auto fp = store.lookup("dimm0.clk");
    ASSERT_TRUE(fp.has_value());
    EXPECT_EQ(fp->label(), "fp1.000000");
    EXPECT_EQ(store.size(), 1u);
}

TEST(EnrollmentStore, MissingLookupIsEmpty)
{
    EnrollmentStore store;
    EXPECT_FALSE(store.lookup("ghost").has_value());
}

TEST(EnrollmentStore, RefusesSilentOverwrite)
{
    EnrollmentStore store;
    EXPECT_TRUE(store.enroll("ch", dummyFingerprint(1.0)));
    EXPECT_FALSE(store.enroll("ch", dummyFingerprint(2.0)));
    EXPECT_DOUBLE_EQ(store.lookup("ch")->raw()[0], 1.0);
    EXPECT_TRUE(store.enroll("ch", dummyFingerprint(2.0), true));
    EXPECT_DOUBLE_EQ(store.lookup("ch")->raw()[0], 2.0);
}

TEST(EnrollmentStore, SaveLoadRoundtrip)
{
    const std::string path = tmpPath("store_roundtrip.bin");
    EnrollmentStore store;
    store.enroll("a", dummyFingerprint(1.0));
    store.enroll("b", dummyFingerprint(5.0));
    ASSERT_TRUE(store.saveToFile(path));

    EnrollmentStore loaded;
    ASSERT_TRUE(loaded.loadFromFile(path));
    EXPECT_EQ(loaded.size(), 2u);
    const auto a = loaded.lookup("a");
    ASSERT_TRUE(a.has_value());
    EXPECT_DOUBLE_EQ(a->raw()[2], 3.0);
    EXPECT_DOUBLE_EQ(a->residual()[1], -0.2);
    EXPECT_DOUBLE_EQ(a->raw().dt(), 1e-12);
    std::remove(path.c_str());
}

TEST(EnrollmentStore, LoadMissingFileFails)
{
    EnrollmentStore store;
    EXPECT_FALSE(store.loadFromFile("/nonexistent/path/store.bin"));
}

TEST(EnrollmentStore, CorruptedPayloadRejected)
{
    const std::string path = tmpPath("store_corrupt.bin");
    EnrollmentStore store;
    store.enroll("a", dummyFingerprint(1.0));
    ASSERT_TRUE(store.saveToFile(path));

    // Flip a byte in the payload.
    std::fstream f(path, std::ios::in | std::ios::out |
                             std::ios::binary);
    f.seekp(40);
    char c;
    f.seekg(40);
    f.get(c);
    f.seekp(40);
    f.put(static_cast<char>(c ^ 0x5a));
    f.close();

    EnrollmentStore loaded;
    loaded.enroll("keep", dummyFingerprint(9.0));
    EXPECT_FALSE(loaded.loadFromFile(path));
    // Failed load must not clobber existing contents.
    EXPECT_TRUE(loaded.contains("keep"));
    std::remove(path.c_str());
}

TEST(EnrollmentStore, BadMagicRejected)
{
    const std::string path = tmpPath("store_magic.bin");
    std::ofstream out(path, std::ios::binary);
    const std::string junk(64, 'x');
    out.write(junk.data(), static_cast<long>(junk.size()));
    out.close();
    EnrollmentStore store;
    EXPECT_FALSE(store.loadFromFile(path));
    std::remove(path.c_str());
}

TEST(EnrollmentStore, TruncatedFileRejected)
{
    const std::string path = tmpPath("store_trunc.bin");
    EnrollmentStore store;
    store.enroll("a", dummyFingerprint(1.0));
    ASSERT_TRUE(store.saveToFile(path));
    // Truncate to half.
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<long>(bytes.size() / 2));
    out.close();
    EnrollmentStore loaded;
    EXPECT_FALSE(loaded.loadFromFile(path));
    std::remove(path.c_str());
}

TEST(EnrollmentStore, ClearEmpties)
{
    EnrollmentStore store;
    store.enroll("a", dummyFingerprint(1.0));
    store.clear();
    EXPECT_EQ(store.size(), 0u);
    EXPECT_FALSE(store.contains("a"));
}

TEST(EnrollmentStore, EnrollInvalidFingerprintFatal)
{
    EnrollmentStore store;
    Fingerprint invalid;
    EXPECT_DEATH(store.enroll("ch", invalid), "invalid");
}

} // namespace
} // namespace divot
