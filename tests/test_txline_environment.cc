/**
 * @file
 * Tests for environmental effects: uniform thermal scaling (the
 * reason IIP survives temperature), vibration strain, swing mode.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "txline/environment.hh"
#include "txline/manufacturing.hh"

namespace divot {
namespace {

TransmissionLine
variedLine()
{
    Rng rng(1);
    auto delta = correlatedGaussianProfile(200, 0.05, 8.0, rng);
    std::vector<double> z(200);
    for (std::size_t i = 0; i < z.size(); ++i)
        z[i] = 50.0 * (1.0 + delta[i]);
    return TransmissionLine(z, 0.5e-3, 1.5e8, 50.0, 50.0, 0.0, "v");
}

TEST(Environment, ReferenceTemperatureIsIdentity)
{
    const auto line = variedLine();
    Environment env(EnvironmentConditions{}, Rng(2));
    const auto snap = env.snapshot(line, 0.0);
    for (std::size_t i = 0; i < line.segments(); ++i)
        EXPECT_DOUBLE_EQ(snap.impedanceAt(i), line.impedanceAt(i));
    EXPECT_DOUBLE_EQ(snap.velocity(), line.velocity());
}

TEST(Environment, HeatLowersImpedanceAndVelocity)
{
    const auto line = variedLine();
    EnvironmentConditions hot;
    hot.temperatureC = 75.0;
    Environment env(hot, Rng(3));
    const auto snap = env.snapshot(line, 0.0);
    EXPECT_LT(snap.impedanceAt(0), line.impedanceAt(0));
    EXPECT_LT(snap.velocity(), line.velocity());
}

TEST(Environment, ThermalScalingIsNearlyUniform)
{
    // The paper's argument: every point shifts in the same proportion,
    // so the impedance *contrast* (the IIP) survives. Check that the
    // ratio snap/original varies across the line far less than the
    // shift itself.
    const auto line = variedLine();
    EnvironmentConditions hot;
    hot.temperatureC = 75.0;
    Environment env(hot, Rng(5));
    const auto snap = env.snapshot(line, 0.0);
    double ratio_min = 1e9, ratio_max = -1e9;
    for (std::size_t i = 0; i < line.segments(); ++i) {
        const double r = snap.impedanceAt(i) / line.impedanceAt(i);
        ratio_min = std::min(ratio_min, r);
        ratio_max = std::max(ratio_max, r);
    }
    const double shift = 1.0 - 0.5 * (ratio_min + ratio_max);
    EXPECT_GT(shift, 0.002);  // a real shift happened...
    EXPECT_LT(ratio_max - ratio_min, 0.3 * shift);  // ...uniformly
}

TEST(Environment, StrainZeroWithoutVibration)
{
    Environment env(EnvironmentConditions{}, Rng(7));
    for (double t = 0.0; t < 1.0; t += 0.1)
        EXPECT_DOUBLE_EQ(env.strainAt(t), 0.0);
}

TEST(Environment, StrainBoundedByAmplitude)
{
    EnvironmentConditions shaky;
    shaky.vibrationStrain = 1e-4;
    Environment env(shaky, Rng(9));
    double peak = 0.0;
    for (double t = 0.0; t < 2.0; t += 1e-3)
        peak = std::max(peak, std::fabs(env.strainAt(t)));
    EXPECT_LE(peak, 1e-4 + 1e-12);
    EXPECT_GT(peak, 0.5e-4);  // the chirp actually swings
}

TEST(Environment, VibrationChangesVelocityPerSnapshot)
{
    EnvironmentConditions shaky;
    shaky.vibrationStrain = 1e-3;
    Environment env(shaky, Rng(11));
    const auto line = variedLine();
    const auto a = env.snapshot(line, 0.123);
    const auto b = env.snapshot(line, 0.377);
    EXPECT_NE(a.velocity(), b.velocity());
}

TEST(Environment, SwingModeVariesTemperaturePerSnapshot)
{
    EnvironmentConditions swing;
    swing.temperatureC = 23.0;
    swing.temperatureSwingHiC = 75.0;
    Environment env(swing, Rng(13));
    const auto line = variedLine();
    const auto a = env.snapshot(line, 0.0);
    const auto b = env.snapshot(line, 0.0);
    // Two snapshots should land at different temperatures with
    // overwhelming probability.
    EXPECT_NE(a.impedanceAt(0), b.impedanceAt(0));
    // Both must be at or below the reference impedance (hotter).
    EXPECT_LE(a.impedanceAt(0), line.impedanceAt(0) + 1e-12);
}

TEST(Environment, InvertedChirpRangeRejected)
{
    EnvironmentConditions bad;
    bad.vibrationFreqLoHz = 50.0;
    bad.vibrationFreqHiHz = 1.0;
    EXPECT_DEATH(Environment(bad, Rng(15)), "chirp");
}

} // namespace
} // namespace divot
