/**
 * @file
 * Tests for running statistics, histograms, quantiles, correlation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hh"
#include "util/stats.hh"

namespace divot {
namespace {

TEST(RunningStats, EmptyDefaults)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation)
{
    const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
    RunningStats s;
    s.addAll(xs);
    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= xs.size();
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= xs.size() - 1;
    EXPECT_DOUBLE_EQ(s.mean(), mean);
    EXPECT_DOUBLE_EQ(s.variance(), var);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 16.0);
    EXPECT_EQ(s.count(), xs.size());
}

TEST(RunningStats, NumericallyStableWithLargeOffset)
{
    RunningStats s;
    const double offset = 1e12;
    for (int i = 0; i < 1000; ++i)
        s.add(offset + (i % 2 ? 1.0 : -1.0));
    EXPECT_NEAR(s.mean(), offset, 1e-3);
    EXPECT_NEAR(s.variance(), 1.001, 0.01);
}

TEST(Histogram, BinningAndDensity)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 100; ++i)
        h.add(4.5);  // all in bin 4
    EXPECT_EQ(h.binCount(4), 100u);
    EXPECT_EQ(h.total(), 100u);
    // All 100 samples in one bin of width 1: density = 1/width = 1.
    EXPECT_DOUBLE_EQ(h.density(4), 1.0);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
}

TEST(Histogram, OutOfRangeClampsToEdges)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-100.0);
    h.add(100.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
}

TEST(Histogram, DensityIntegratesToOne)
{
    Histogram h(-4.0, 4.0, 64);
    Rng rng(3);
    for (int i = 0; i < 50000; ++i)
        h.add(rng.gaussian());
    double integral = 0.0;
    const double width = 8.0 / 64.0;
    for (std::size_t i = 0; i < h.bins(); ++i)
        integral += h.density(i) * width;
    EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, SeriesMatchesBins)
{
    Histogram h(0.0, 1.0, 4);
    h.add(0.1);
    const auto s = h.series();
    ASSERT_EQ(s.size(), 4u);
    EXPECT_DOUBLE_EQ(s[0].first, h.binCenter(0));
    EXPECT_DOUBLE_EQ(s[0].second, h.density(0));
}

TEST(Quantile, MedianAndExtremes)
{
    std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(Pearson, PerfectAndAnticorrelated)
{
    std::vector<double> x{1, 2, 3, 4, 5};
    std::vector<double> y{2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    std::vector<double> z{10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Pearson, UncorrelatedNearZero)
{
    Rng rng(5);
    std::vector<double> x, y;
    for (int i = 0; i < 20000; ++i) {
        x.push_back(rng.gaussian());
        y.push_back(rng.gaussian());
    }
    EXPECT_LT(std::fabs(pearson(x, y)), 0.03);
}

} // namespace
} // namespace divot
