/**
 * @file
 * Conformance + fuzz suite for the service request/response codec
 * (service/request.hh), mirroring the store-migration discipline:
 * every frame kind round-trips bit-exactly, and no byte flip or
 * truncation anywhere in a stream may crash the decoder, junk-accept
 * a frame that was never encoded, or fail without a diagnosable
 * parse status.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "service/request.hh"
#include "store/codec.hh"
#include "util/rng.hh"

namespace divot {
namespace {

using service::FrameParse;
using service::ParseStatus;
using service::RequestKind;
using service::ResponseStatus;
using service::ServiceRequest;
using service::ServiceResponse;
using service::StreamDecode;

bool
sameRequest(const ServiceRequest &a, const ServiceRequest &b)
{
    return a.id == b.id && a.kind == b.kind && a.channel == b.channel;
}

bool
sameResponse(const ServiceResponse &a, const ServiceResponse &b)
{
    return a.id == b.id && a.kind == b.kind && a.status == b.status &&
        a.tick == b.tick && a.channel == b.channel &&
        a.state == b.state && a.phase == b.phase &&
        a.flags == b.flags && a.similarity == b.similarity &&
        a.generation == b.generation && a.channels == b.channels &&
        a.fenced == b.fenced && a.quarantined == b.quarantined;
}

/** Deterministic request with every field exercised. */
ServiceRequest
makeRequest(std::size_t i)
{
    ServiceRequest rq;
    rq.id = 0x1000 + i;
    rq.kind = static_cast<RequestKind>(i % service::kRequestKinds);
    rq.channel = rq.kind == RequestKind::FleetSummary
        ? std::string()
        : "ch" + std::to_string(i * 37 % 1000);
    return rq;
}

/** Deterministic response with every field non-trivial. */
ServiceResponse
makeResponse(std::size_t i)
{
    ServiceResponse rs;
    rs.id = 0x2000 + i;
    rs.kind = static_cast<RequestKind>(i % service::kRequestKinds);
    rs.status =
        static_cast<ResponseStatus>(i % service::kResponseStatuses);
    rs.tick = 7 * i;
    rs.channel = "ch" + std::to_string(i);
    rs.state = i % 7;
    rs.phase = i % 4;
    rs.flags = i % 8;
    rs.similarity = 0.25 + 0.0625 * static_cast<double>(i % 12);
    rs.generation = 1 + i % 3;
    rs.channels = 100 + i;
    rs.fenced = i % 5;
    rs.quarantined = i % 2;
    return rs;
}

/** Hand-build a frame so the header can be deliberately damaged. */
std::vector<char>
craftFrame(uint32_t magic, uint32_t version,
           uint64_t bodyLen, uint64_t checksum,
           const std::vector<char> &body)
{
    std::vector<char> out;
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((magic >> (8 * i)) & 0xffu));
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((version >> (8 * i)) & 0xffu));
    store::putU64(out, bodyLen);
    store::putU64(out, checksum);
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

TEST(ServiceCodec, EveryRequestKindRoundTrips)
{
    for (std::size_t i = 0; i < 2 * service::kRequestKinds; ++i) {
        const ServiceRequest rq = makeRequest(i);
        std::vector<char> stream;
        service::appendRequestFrame(stream, rq);
        ServiceRequest back;
        const FrameParse parse = service::decodeRequestFrame(
            stream.data(), stream.size(), back);
        ASSERT_TRUE(parse.ok()) << parse.detail;
        EXPECT_EQ(parse.consumed, stream.size());
        EXPECT_TRUE(sameRequest(rq, back));
    }
}

TEST(ServiceCodec, EveryResponseShapeRoundTrips)
{
    // kinds x statuses: 25 combinations, every payload field live.
    for (std::size_t i = 0;
         i < service::kRequestKinds * service::kResponseStatuses;
         ++i) {
        const ServiceResponse rs = makeResponse(i);
        std::vector<char> stream;
        service::appendResponseFrame(stream, rs);
        ServiceResponse back;
        const FrameParse parse = service::decodeResponseFrame(
            stream.data(), stream.size(), back);
        ASSERT_TRUE(parse.ok()) << parse.detail;
        EXPECT_EQ(parse.consumed, stream.size());
        EXPECT_TRUE(sameResponse(rs, back));
    }
}

TEST(ServiceCodec, StreamOfMixedFramesRoundTrips)
{
    std::vector<ServiceRequest> sent;
    std::vector<char> stream;
    for (std::size_t i = 0; i < 16; ++i) {
        sent.push_back(makeRequest(i));
        service::appendRequestFrame(stream, sent.back());
    }
    std::vector<ServiceRequest> got;
    const StreamDecode dec = service::decodeRequestStream(stream, got);
    ASSERT_TRUE(dec.ok()) << dec.last.detail;
    EXPECT_EQ(dec.frames, sent.size());
    EXPECT_EQ(dec.offset, stream.size());
    ASSERT_EQ(got.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i)
        EXPECT_TRUE(sameRequest(sent[i], got[i])) << "frame " << i;
}

TEST(ServiceCodec, ByteFlipsNeverCrashOrJunkAccept)
{
    // Flip every single byte of a 8-frame request stream, one at a
    // time. The decoder must never crash, and every frame it does
    // accept must be byte-identical to a frame that was encoded — a
    // flipped stream can only shorten the decoded prefix, never
    // invent traffic.
    std::vector<ServiceRequest> sent;
    std::vector<char> stream;
    for (std::size_t i = 0; i < 8; ++i) {
        sent.push_back(makeRequest(i));
        service::appendRequestFrame(stream, sent.back());
    }
    for (std::size_t pos = 0; pos < stream.size(); ++pos) {
        for (const unsigned char flip :
             {0x01u, 0x80u, 0xffu}) {
            std::vector<char> mutated = stream;
            mutated[pos] = static_cast<char>(
                static_cast<unsigned char>(mutated[pos]) ^ flip);
            std::vector<ServiceRequest> got;
            const StreamDecode dec =
                service::decodeRequestStream(mutated, got);
            // Prefix property: accepted frames match the originals.
            ASSERT_LE(got.size(), sent.size())
                << "flip at " << pos << " invented frames";
            for (std::size_t i = 0; i < got.size(); ++i)
                ASSERT_TRUE(sameRequest(sent[i], got[i]))
                    << "flip at byte " << pos
                    << " junk-accepted frame " << i;
            if (!dec.ok()) {
                // Diagnosable: a real status and a located detail.
                EXPECT_NE(dec.last.status, ParseStatus::Ok);
                EXPECT_FALSE(dec.last.detail.empty())
                    << "flip at " << pos << " gave a bare failure";
            }
        }
    }
}

TEST(ServiceCodec, TruncationAtEveryLengthIsDiagnosable)
{
    std::vector<ServiceResponse> sent;
    std::vector<char> stream;
    std::vector<std::size_t> boundaries; // clean frame ends
    for (std::size_t i = 0; i < 6; ++i) {
        sent.push_back(makeResponse(i));
        service::appendResponseFrame(stream, sent.back());
        boundaries.push_back(stream.size());
    }
    for (std::size_t n = 0; n < stream.size(); ++n) {
        std::vector<char> cut(stream.begin(), stream.begin() + n);
        std::vector<ServiceResponse> got;
        const StreamDecode dec =
            service::decodeResponseStream(cut, got);
        const bool atBoundary = n == 0 ||
            std::find(boundaries.begin(), boundaries.end(), n) !=
                boundaries.end();
        if (atBoundary) {
            EXPECT_TRUE(dec.ok()) << "clean cut at " << n
                                  << " flagged: " << dec.last.detail;
        } else {
            EXPECT_FALSE(dec.ok())
                << "mid-frame cut at " << n << " accepted";
            EXPECT_EQ(dec.last.status, ParseStatus::Truncated);
            EXPECT_FALSE(dec.last.detail.empty());
        }
        ASSERT_LE(got.size(), sent.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_TRUE(sameResponse(sent[i], got[i]))
                << "cut at " << n << " junk-accepted frame " << i;
    }
}

TEST(ServiceCodec, BadMagicVersionLengthChecksumBody)
{
    const ServiceRequest rq = makeRequest(1);
    std::vector<char> good;
    service::appendRequestFrame(good, rq);
    const std::vector<char> body(good.begin() +
                                     service::kServiceFrameHeader,
                                 good.end());
    const uint64_t sum = store::fnv1a(body);
    ServiceRequest out;

    const std::vector<char> badMagic = craftFrame(
        0xDEADBEEFu, service::kServiceVersion, body.size(), sum, body);
    EXPECT_EQ(service::decodeRequestFrame(badMagic.data(),
                                          badMagic.size(), out)
                  .status,
              ParseStatus::BadMagic);

    const std::vector<char> badVersion = craftFrame(
        service::kServiceMagic, 99, body.size(), sum, body);
    EXPECT_EQ(service::decodeRequestFrame(badVersion.data(),
                                          badVersion.size(), out)
                  .status,
              ParseStatus::BadVersion);

    // A huge bodyLen must trip the absurd-length guard, not overflow
    // the `header + bodyLen` arithmetic into a junk accept.
    const std::vector<char> badLength =
        craftFrame(service::kServiceMagic, service::kServiceVersion,
                   ~0ull, sum, body);
    EXPECT_EQ(service::decodeRequestFrame(badLength.data(),
                                          badLength.size(), out)
                  .status,
              ParseStatus::BadLength);

    const std::vector<char> badSum =
        craftFrame(service::kServiceMagic, service::kServiceVersion,
                   body.size(), sum ^ 1, body);
    EXPECT_EQ(service::decodeRequestFrame(badSum.data(),
                                          badSum.size(), out)
                  .status,
              ParseStatus::BadChecksum);

    // Checksum-valid but semantically broken bodies: out-of-range
    // kind ordinal, and a trailing byte the schema never wrote.
    std::vector<char> badKind;
    store::putU64(badKind, 77); // kind ordinal out of range
    store::putU64(badKind, 1);
    store::putString(badKind, "ch0");
    const std::vector<char> badKindFrame =
        craftFrame(service::kServiceMagic, service::kServiceVersion,
                   badKind.size(), store::fnv1a(badKind), badKind);
    EXPECT_EQ(service::decodeRequestFrame(badKindFrame.data(),
                                          badKindFrame.size(), out)
                  .status,
              ParseStatus::BadBody);

    std::vector<char> overlong = body;
    overlong.push_back('\0');
    const std::vector<char> overlongFrame =
        craftFrame(service::kServiceMagic, service::kServiceVersion,
                   overlong.size(), store::fnv1a(overlong), overlong);
    EXPECT_EQ(service::decodeRequestFrame(overlongFrame.data(),
                                          overlongFrame.size(), out)
                  .status,
              ParseStatus::BadBody);
}

TEST(ServiceCodec, DamagedFrameStopsStreamWithLocatedDetail)
{
    std::vector<char> stream;
    std::vector<std::size_t> starts; // frame start offsets
    for (std::size_t i = 0; i < 4; ++i) {
        starts.push_back(stream.size());
        service::appendRequestFrame(stream, makeRequest(i));
    }
    // Damage frame 2's body.
    stream[starts[2] + service::kServiceFrameHeader + 3] ^= 0x40;
    std::vector<ServiceRequest> got;
    const StreamDecode dec = service::decodeRequestStream(stream, got);
    EXPECT_FALSE(dec.ok());
    EXPECT_EQ(dec.frames, 2u);
    EXPECT_EQ(got.size(), 2u);
    EXPECT_EQ(dec.offset, starts[2]);
    EXPECT_EQ(dec.last.status, ParseStatus::BadChecksum);
    // The detail names the frame ordinal and the byte offset.
    EXPECT_NE(dec.last.detail.find("frame 2"), std::string::npos)
        << dec.last.detail;
}

TEST(ServiceCodec, RandomGarbageNeverDecodes)
{
    // Random bytes (no crafted header) must never produce a frame.
    Rng rng(0xC0DECULL);
    for (int trial = 0; trial < 64; ++trial) {
        std::vector<char> junk(8 + rng.uniformInt(256));
        for (char &b : junk)
            b = static_cast<char>(rng.uniformInt(256));
        // Avoid the astronomically unlikely valid-magic prefix.
        if (junk.size() >= 4)
            junk[0] = static_cast<char>(~junk[0]);
        std::vector<ServiceRequest> got;
        const StreamDecode dec =
            service::decodeRequestStream(junk, got);
        EXPECT_TRUE(got.empty());
        EXPECT_FALSE(dec.ok());
        EXPECT_FALSE(dec.last.detail.empty());
    }
}

TEST(ServiceCodec, ResponseDigestIsOrderAndContentSensitive)
{
    const ServiceResponse a = makeResponse(1);
    const ServiceResponse b = makeResponse(2);
    const uint64_t ab = service::foldResponseDigest(
        service::foldResponseDigest(0, a), b);
    const uint64_t ba = service::foldResponseDigest(
        service::foldResponseDigest(0, b), a);
    EXPECT_NE(ab, ba);
    ServiceResponse c = a;
    c.similarity += 1e-9;
    EXPECT_NE(service::foldResponseDigest(0, a),
              service::foldResponseDigest(0, c));
}

TEST(ServiceCodec, NamesAreStable)
{
    EXPECT_STREQ(service::requestKindName(RequestKind::Enroll),
                 "enroll");
    EXPECT_STREQ(service::requestKindName(RequestKind::FleetSummary),
                 "fleet_summary");
    EXPECT_STREQ(service::responseStatusName(ResponseStatus::Busy),
                 "busy");
    EXPECT_STREQ(service::parseStatusName(ParseStatus::BadChecksum),
                 "bad_checksum");
}

} // namespace
} // namespace divot
