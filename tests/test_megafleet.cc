/**
 * @file
 * Tests for MegaFleet, the bounded-memory fleet service over the
 * sharded EnrollmentDb: synthetic-channel determinism, thread-count
 * verdict identity (with and without storage faults), crash-reopen
 * enrollment, and the no-junk guarantee when shard images are
 * destroyed under a running fleet.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault.hh"
#include "fleet/megafleet.hh"
#include "store/io.hh"

namespace divot {
namespace {

std::string
freshDir(const char *name)
{
    const std::string dir = std::string(::testing::TempDir()) + name;
    store::ensureDir(dir);
    for (unsigned s = 0; s < 16; ++s) {
        const std::string shard =
            dir + "/shard-" + std::to_string(s) + ".bin";
        store::removeFile(shard);
        store::removeFile(shard + ".tmp");
    }
    store::removeFile(dir + "/journal.wal");
    return dir;
}

MegaFleetConfig
smallConfig(const std::string &dir, unsigned threads)
{
    MegaFleetConfig cfg;
    cfg.channels = 96;
    cfg.fingerprintBins = 8;
    cfg.probesPerTick = 16;
    cfg.threads = threads;
    cfg.store.directory = dir;
    cfg.store.shards = 8;
    cfg.store.overlayFlushRecords = 8;
    cfg.telemetry.enabled = false;
    return cfg;
}

TEST(MegaFleet, EnrollsAndMonitorsClean)
{
    const std::string dir = freshDir("mega_clean");
    MegaFleet fleet(smallConfig(dir, 1), Rng(7));
    EXPECT_EQ(fleet.enrollAll(), 96u);

    const MegaFleetReport report = fleet.run(6);
    EXPECT_EQ(report.ticks, 6u);
    EXPECT_EQ(report.probes, 6u * 16u);
    EXPECT_EQ(report.pendingReenroll, 0u);
    EXPECT_TRUE(report.lastTrusted);
    EXPECT_GE(report.lastFusedSimilarity, 0.99);
    EXPECT_GT(report.peakResidentBytes, 0u);

    // Bounded memory: the peak resident footprint covers one shard
    // image plus one probe batch, not the whole fleet.
    std::size_t allShards = 0;
    for (unsigned s = 0; s < 8; ++s) {
        const int64_t size = store::fileSize(fleet.db().shardPath(s));
        if (size > 0)
            allShards += static_cast<std::size_t>(size);
    }
    EXPECT_LT(report.peakResidentBytes, allShards);
}

TEST(MegaFleet, SyntheticEnrollmentIsAPureFunctionOfSeed)
{
    const std::string dirA = freshDir("mega_det_a");
    const std::string dirB = freshDir("mega_det_b");
    MegaFleet a(smallConfig(dirA, 1), Rng(11));
    MegaFleet b(smallConfig(dirB, 4), Rng(11));
    for (std::size_t i : {std::size_t(0), std::size_t(17),
                          std::size_t(95)})
        EXPECT_EQ(a.syntheticEnrollment(i), b.syntheticEnrollment(i));
    MegaFleet c(smallConfig(freshDir("mega_det_c"), 1), Rng(12));
    EXPECT_NE(a.syntheticEnrollment(0), c.syntheticEnrollment(0));
}

TEST(MegaFleet, VerdictDigestIsThreadInvariant)
{
    const std::string dirA = freshDir("mega_serial");
    const std::string dirB = freshDir("mega_pooled");
    MegaFleet serial(smallConfig(dirA, 1), Rng(21));
    MegaFleet pooled(smallConfig(dirB, 0), Rng(21));
    ASSERT_EQ(serial.enrollAll(), 96u);
    ASSERT_EQ(pooled.enrollAll(), 96u);
    const MegaFleetReport a = serial.run(8);
    const MegaFleetReport b = pooled.run(8);
    EXPECT_EQ(a.verdictDigest, b.verdictDigest);
    EXPECT_NE(a.verdictDigest, 0u);
}

TEST(MegaFleet, SurvivesPowerCutsDuringEnrollment)
{
    FaultPlan plan;
    plan.storageCrash(20, StorageCrashPoint::AfterJournal)
        .storageCrash(55, StorageCrashPoint::BeforeCommit);
    const FaultInjector injector(plan, Rng(3));

    const std::string dirA = freshDir("mega_crash_serial");
    MegaFleet serial(smallConfig(dirA, 1), Rng(33));
    serial.attachFaultInjector(&injector);
    EXPECT_EQ(serial.enrollAll(), 96u);
    EXPECT_GE(serial.report().crashRecoveries, 2u);
    const MegaFleetReport a = serial.run(6);
    EXPECT_EQ(a.pendingReenroll, 0u); // every record recovered
    EXPECT_TRUE(a.lastTrusted);

    // The faulted run is thread-invariant too.
    const std::string dirB = freshDir("mega_crash_pooled");
    MegaFleet pooled(smallConfig(dirB, 0), Rng(33));
    pooled.attachFaultInjector(&injector);
    EXPECT_EQ(pooled.enrollAll(), 96u);
    const MegaFleetReport b = pooled.run(6);
    EXPECT_EQ(a.verdictDigest, b.verdictDigest);
}

TEST(MegaFleet, DestroyedShardFencesItsChannelsNeverJunk)
{
    const std::string dir = freshDir("mega_fence");
    MegaFleetConfig cfg = smallConfig(dir, 1);
    cfg.probesPerTick = 96; // every tick touches the whole fleet
    MegaFleet fleet(cfg, Rng(5));
    ASSERT_EQ(fleet.enrollAll(), 96u);

    // Obliterate one shard image: its channels are unrecoverable.
    const std::string shard0 = fleet.db().shardPath(0);
    ASSERT_GT(store::fileSize(shard0), 0);
    ASSERT_TRUE(store::truncateFile(shard0, 10));

    const MegaFleetVerdict first = fleet.tick();
    EXPECT_GT(first.pendingReenrollWires, 0u);
    EXPECT_LT(first.contributingWires, 96u);
    EXPECT_EQ(first.contributingWires + first.pendingReenrollWires,
              96u);
    // The surviving wires keep the bus authenticated; nothing junk
    // was fused in.
    EXPECT_TRUE(first.busAuthenticated);
    EXPECT_GE(first.fusedSimilarity, 0.99);

    // Fenced channels stay out of later rounds.
    const MegaFleetVerdict second = fleet.tick();
    EXPECT_EQ(second.pendingReenrollWires, 0u);
    EXPECT_EQ(second.contributingWires, first.contributingWires);
    EXPECT_TRUE(second.busAuthenticated);
}

} // namespace
} // namespace divot
