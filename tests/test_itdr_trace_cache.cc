/**
 * @file
 * Tests for the reflection-trace cache: LRU mechanics, content keying
 * (tamper / environment changes must miss — the invalidation path),
 * and the iTDR integration that makes repeated measurements of an
 * unperturbed line skip the lattice re-simulation.
 */

#include <gtest/gtest.h>

#include "itdr/itdr.hh"
#include "itdr/trace_cache.hh"
#include "txline/environment.hh"
#include "txline/manufacturing.hh"

namespace divot {
namespace {

Waveform
wave(double v)
{
    return Waveform(1.0, {v, v});
}

TransmissionLine
cacheTestLine(uint64_t seed = 1)
{
    ProcessParams params;
    ManufacturingProcess fab(params, Rng(seed));
    auto z = fab.drawImpedanceProfile(0.1, 0.5e-3);
    return TransmissionLine(std::move(z), 0.5e-3, params.velocity,
                            50.0, 50.2, params.lossNeperPerMeter, "c");
}

TEST(TraceCache, FindAfterInsertHits)
{
    TraceCache cache(4);
    const TraceKey key = TraceKeyBuilder().add(1.0).add(2.0).key();
    EXPECT_EQ(cache.find(key), nullptr);
    cache.insert(key, wave(3.0));
    const Waveform *hit = cache.find(key);
    ASSERT_NE(hit, nullptr);
    EXPECT_DOUBLE_EQ((*hit)[0], 3.0);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(TraceCache, LruEvictsTheColdestEntry)
{
    TraceCache cache(2);
    const TraceKey a = TraceKeyBuilder().add(uint64_t{1}).key();
    const TraceKey b = TraceKeyBuilder().add(uint64_t{2}).key();
    const TraceKey c = TraceKeyBuilder().add(uint64_t{3}).key();
    cache.insert(a, wave(1.0));
    cache.insert(b, wave(2.0));
    ASSERT_NE(cache.find(a), nullptr);  // a is now most-recently-used
    cache.insert(c, wave(3.0));         // evicts b, not a
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_NE(cache.find(a), nullptr);
    EXPECT_EQ(cache.find(b), nullptr);
    EXPECT_NE(cache.find(c), nullptr);
}

TEST(TraceCache, ZeroCapacityDisables)
{
    TraceCache cache(0);
    const TraceKey key = TraceKeyBuilder().add(1.0).key();
    EXPECT_EQ(cache.insert(key, wave(1.0)), nullptr);
    EXPECT_EQ(cache.find(key), nullptr);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(TraceCache, DistinctContentDistinctKeys)
{
    const auto line_a = cacheTestLine(1);
    const auto line_b = cacheTestLine(2);
    const TraceKey ka = TraceKeyBuilder().add(line_a).key();
    const TraceKey kb = TraceKeyBuilder().add(line_b).key();
    EXPECT_FALSE(ka == kb);
    // The same content always produces the same key.
    const TraceKey ka2 = TraceKeyBuilder().add(line_a).key();
    EXPECT_TRUE(ka == ka2);
}

TEST(TraceCache, ItdrRepeatedMeasurementsHit)
{
    ItdrConfig cfg;
    cfg.trialsPerPhase = 17;
    ITdr itdr(cfg, Rng(5));
    const auto line = cacheTestLine();
    itdr.measure(line);
    itdr.measure(line);
    itdr.measure(line);
    EXPECT_EQ(itdr.traceCache().misses(), 1u);
    EXPECT_EQ(itdr.traceCache().hits(), 2u);
}

TEST(TraceCache, CachedMeasurementMatchesUncached)
{
    const auto line = cacheTestLine();
    ItdrConfig cached_cfg;
    cached_cfg.trialsPerPhase = 17;
    ItdrConfig uncached_cfg = cached_cfg;
    uncached_cfg.traceCacheCapacity = 0;
    ITdr cached(cached_cfg, Rng(7));
    ITdr uncached(uncached_cfg, Rng(7));
    for (int pass = 0; pass < 2; ++pass) {
        const IipMeasurement a = cached.measure(line);
        const IipMeasurement b = uncached.measure(line);
        ASSERT_EQ(a.iip.size(), b.iip.size());
        for (std::size_t i = 0; i < a.iip.size(); ++i)
            EXPECT_DOUBLE_EQ(a.iip[i], b.iip[i]);
    }
    EXPECT_EQ(cached.traceCache().hits(), 1u);
    EXPECT_EQ(uncached.traceCache().hits(), 0u);
}

TEST(TraceCache, TamperInvalidatesByContent)
{
    ItdrConfig cfg;
    cfg.trialsPerPhase = 17;
    ITdr itdr(cfg, Rng(9));
    const auto line = cacheTestLine();
    itdr.measure(line);
    itdr.measure(line);
    ASSERT_EQ(itdr.traceCache().hits(), 1u);

    // A tampered copy must re-render: its content key differs.
    TransmissionLine attacked = line;
    attacked.setLoadImpedance(70.0);
    itdr.measure(attacked);
    EXPECT_EQ(itdr.traceCache().misses(), 2u);

    // The pristine trace is still cached (LRU holds both).
    itdr.measure(line);
    EXPECT_EQ(itdr.traceCache().hits(), 2u);
}

TEST(TraceCache, EnvironmentShiftInvalidatesByContent)
{
    ItdrConfig cfg;
    cfg.trialsPerPhase = 17;
    ITdr itdr(cfg, Rng(11));
    const auto line = cacheTestLine();

    EnvironmentConditions hot;
    hot.temperatureC = 75.0;
    Environment env(hot, Rng(1));
    const TransmissionLine shifted = env.snapshot(line, 0.0);

    itdr.measure(line);
    itdr.measure(shifted);
    EXPECT_EQ(itdr.traceCache().misses(), 2u);
    EXPECT_EQ(itdr.traceCache().hits(), 0u);
}

} // namespace
} // namespace divot
