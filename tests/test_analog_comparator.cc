/**
 * @file
 * Tests for the comparator: the APC foundation. The empirical strobe
 * frequency must match the analytic Phi probability — that identity
 * is Eq. (1) of the paper.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analog/comparator.hh"
#include "util/math.hh"

namespace divot {
namespace {

TEST(Comparator, ZeroNoiseIsDeterministic)
{
    ComparatorParams p;
    p.noiseSigma = 0.0;
    Comparator c(p, Rng(1));
    EXPECT_TRUE(c.strobe(1e-3, 0.0));
    EXPECT_FALSE(c.strobe(-1e-3, 0.0));
    EXPECT_DOUBLE_EQ(c.probabilityHigh(1e-3, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(c.probabilityHigh(-1e-3, 0.0), 0.0);
}

TEST(Comparator, ProbabilityHighIsGaussianCdf)
{
    ComparatorParams p;
    p.noiseSigma = 1e-3;
    Comparator c(p, Rng(2));
    EXPECT_NEAR(c.probabilityHigh(0.0, 0.0), 0.5, 1e-12);
    EXPECT_NEAR(c.probabilityHigh(1e-3, 0.0), normalCdf(1.0), 1e-12);
    EXPECT_NEAR(c.probabilityHigh(-2e-3, 0.0), normalCdf(-2.0), 1e-12);
}

/** Eq. (1): strobe frequency converges to the analytic probability. */
class StrobeFrequency : public ::testing::TestWithParam<double>
{
};

TEST_P(StrobeFrequency, MatchesAnalyticProbability)
{
    const double v_sig = GetParam();
    ComparatorParams p;
    p.noiseSigma = 1e-3;
    Comparator c(p, Rng(42));
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += c.strobe(v_sig, 0.0);
    const double expected = c.probabilityHigh(v_sig, 0.0);
    EXPECT_NEAR(static_cast<double>(hits) / n, expected,
                4.0 * std::sqrt(expected * (1 - expected) / n) + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    VoltageSweep, StrobeFrequency,
    ::testing::Values(-2e-3, -1e-3, -0.5e-3, 0.0, 0.5e-3, 1e-3, 2e-3));

TEST(Comparator, OffsetShiftsDecision)
{
    ComparatorParams p;
    p.noiseSigma = 1e-3;
    p.inputOffset = 0.5e-3;
    Comparator c(p, Rng(3));
    EXPECT_NEAR(c.probabilityHigh(-0.5e-3, 0.0), 0.5, 1e-12);
}

TEST(Comparator, ReferenceInputSubtracts)
{
    ComparatorParams p;
    p.noiseSigma = 1e-3;
    Comparator c(p, Rng(4));
    EXPECT_NEAR(c.probabilityHigh(2e-3, 2e-3), 0.5, 1e-12);
    EXPECT_NEAR(c.probabilityHigh(3e-3, 2e-3),
                c.probabilityHigh(1e-3, 0.0), 1e-12);
}

TEST(Comparator, MetastableBandFlipsCoins)
{
    ComparatorParams p;
    p.noiseSigma = 0.0;
    p.metastableBand = 1e-3;
    Comparator c(p, Rng(5));
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += c.strobe(0.0, 0.0);  // dead center of the band
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.5, 0.02);
    // Outside the band: deterministic again.
    EXPECT_TRUE(c.strobe(2e-3, 0.0));
}

TEST(Comparator, StrobeAnalyticMatchesBatchStatistics)
{
    // The binomial aggregate and the per-trial batch sample the same
    // law: over many bins their mean hit counts must agree within CI
    // bounds, at a fraction of the draws.
    ComparatorParams p;
    p.noiseSigma = 1e-3;
    Comparator sampled(p, Rng(31));
    Comparator analytic(p, Rng(32));
    const std::vector<double> levels = {-1.5e-3, -0.5e-3, 0.5e-3,
                                        1.5e-3};
    const unsigned per_level = 40;
    const unsigned trials =
        per_level * static_cast<unsigned>(levels.size());
    std::vector<double> refs(trials);
    for (unsigned k = 0; k < trials; ++k)
        refs[k] = levels[k % levels.size()];
    const int bins = 400;
    double sum_s = 0.0, sum_a = 0.0;
    for (int i = 0; i < bins; ++i) {
        sum_s += sampled.strobeBatch(0.3e-3, refs.data(), trials);
        sum_a += analytic.strobeAnalytic(0.3e-3, levels.data(),
                                         levels.size(), per_level);
    }
    double expected = 0.0;
    for (double ref : levels)
        expected += per_level * sampled.probabilityHigh(0.3e-3, ref);
    const double se = std::sqrt(expected) / std::sqrt(double(bins));
    EXPECT_NEAR(sum_s / bins, expected, 6.0 * se);
    EXPECT_NEAR(sum_a / bins, expected, 6.0 * se);
}

TEST(Comparator, StrobeAnalyticSaturatedLevelsAreExact)
{
    // Far outside the noise the analytic path must return exact
    // all-or-nothing counts (and consume no draws for them).
    ComparatorParams p;
    p.noiseSigma = 1e-3;
    Comparator c(p, Rng(33));
    const std::vector<double> lo = {-0.5, -0.25};  // p = 1 both
    const std::vector<double> hi = {0.5, 0.25};    // p = 0 both
    EXPECT_EQ(c.strobeAnalytic(0.0, lo.data(), lo.size(), 10), 20u);
    EXPECT_EQ(c.strobeAnalytic(0.0, hi.data(), hi.size(), 10), 0u);
}

TEST(Comparator, StrobeAnalyticMetastableBandIsCoinFlip)
{
    ComparatorParams p;
    p.noiseSigma = 0.0;
    p.metastableBand = 1e-3;
    Comparator c(p, Rng(34));
    const std::vector<double> levels = {0.0};  // dead center
    double hits = 0.0;
    const int bins = 2000;
    const unsigned per_level = 16;
    for (int i = 0; i < bins; ++i)
        hits += c.strobeAnalytic(0.0, levels.data(), 1, per_level);
    EXPECT_NEAR(hits / (double(bins) * per_level), 0.5, 0.02);
}

TEST(Comparator, ParameterValidation)
{
    ComparatorParams bad;
    bad.noiseSigma = -1.0;
    EXPECT_DEATH(Comparator(bad, Rng(6)), "sigma");
    ComparatorParams bad2;
    bad2.metastableBand = -1.0;
    EXPECT_DEATH(Comparator(bad2, Rng(7)), "metastable");
}

} // namespace
} // namespace divot
