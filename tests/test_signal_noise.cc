/**
 * @file
 * Tests for noise sources: Gaussian statistics, sinusoidal EMI,
 * composite RMS combination.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "signal/noise.hh"
#include "util/stats.hh"

namespace divot {
namespace {

TEST(GaussianNoise, MomentsMatchSigma)
{
    GaussianNoise n(2e-3, Rng(1));
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(n.sampleAt(0.0));
    EXPECT_NEAR(s.mean(), 0.0, 1e-4);
    EXPECT_NEAR(s.stddev(), 2e-3, 5e-5);
    EXPECT_DOUBLE_EQ(n.rmsAmplitude(), 2e-3);
}

TEST(GaussianNoise, ZeroSigmaIsSilent)
{
    GaussianNoise n(0.0, Rng(2));
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(n.sampleAt(static_cast<double>(i)), 0.0);
}

TEST(GaussianNoise, NegativeSigmaRejected)
{
    EXPECT_DEATH(GaussianNoise(-1.0, Rng(3)), "sigma");
}

TEST(SinusoidalInterference, DeterministicWaveform)
{
    SinusoidalInterference emi(1e-3, 1e6, 0.0);
    EXPECT_NEAR(emi.sampleAt(0.0), 0.0, 1e-15);
    EXPECT_NEAR(emi.sampleAt(0.25e-6), 1e-3, 1e-12);
    EXPECT_NEAR(emi.sampleAt(0.5e-6), 0.0, 1e-12);
}

TEST(SinusoidalInterference, RmsIsAmplitudeOverSqrt2)
{
    SinusoidalInterference emi(2e-3, 3e6);
    EXPECT_NEAR(emi.rmsAmplitude(), 2e-3 / std::sqrt(2.0), 1e-12);
    // Empirical check over many periods.
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(emi.sampleAt(i * 1.7e-9));
    EXPECT_NEAR(std::sqrt(s.variance() + s.mean() * s.mean()),
                emi.rmsAmplitude(), 5e-5);
}

TEST(CompositeNoise, SumsComponents)
{
    CompositeNoise comp;
    comp.add(std::make_unique<SinusoidalInterference>(1e-3, 1e6, M_PI_2));
    comp.add(std::make_unique<SinusoidalInterference>(1e-3, 1e6, M_PI_2));
    EXPECT_NEAR(comp.sampleAt(0.0), 2e-3, 1e-12);
    EXPECT_EQ(comp.components(), 2u);
}

TEST(CompositeNoise, RmsCombinesInQuadrature)
{
    CompositeNoise comp;
    comp.add(std::make_unique<GaussianNoise>(3e-3, Rng(5)));
    comp.add(std::make_unique<GaussianNoise>(4e-3, Rng(6)));
    EXPECT_NEAR(comp.rmsAmplitude(), 5e-3, 1e-12);
}

TEST(CompositeNoise, EmptyIsSilent)
{
    CompositeNoise comp;
    EXPECT_DOUBLE_EQ(comp.sampleAt(1.0), 0.0);
    EXPECT_DOUBLE_EQ(comp.rmsAmplitude(), 0.0);
}

} // namespace
} // namespace divot
