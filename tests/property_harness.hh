/**
 * @file
 * Seeded property-test harness: generates random *valid*
 * ItdrConfig / fleet / FaultPlan combinations so the pipeline
 * invariants (counter balance, span balance, thread-count
 * determinism, strobe-engine eligibility, fault-free health) can be
 * checked over a whole family of configurations instead of a few
 * hand-picked ones.
 *
 * Case count defaults to 64 and scales with the DIVOT_PROPERTY_CASES
 * environment variable (e.g. =8 for a smoke run, =512 for a soak).
 * Every case is a pure function of its index, so a failure report of
 * "case 17" reproduces in isolation.
 */

#ifndef DIVOT_TESTS_PROPERTY_HARNESS_HH
#define DIVOT_TESTS_PROPERTY_HARNESS_HH

#include <cstdlib>
#include <string>

#include "fault/fault.hh"
#include "fleet/channel_scheduler.hh"
#include "itdr/itdr.hh"
#include "util/rng.hh"

namespace divot {
namespace property {

/** One scheduled service request of a property case. `channel` may
 *  name a wire that exists, a duplicate of another step's wire, or
 *  nothing at all (admission must answer Unknown, never crash). */
struct RequestStep
{
    std::size_t tick = 0;  //!< scheduler round it is submitted before
    unsigned kind = 1;     //!< service::RequestKind ordinal
    std::string channel;   //!< target wire name (empty for summary)
};

/** One generated scenario. */
struct PropertyCase
{
    std::size_t index = 0;       //!< case ordinal (reproduction key)
    uint64_t seed = 0;           //!< master seed for the fleet
    FleetConfig fleet;           //!< scheduler knobs (threads unset)
    BusChannelConfig channel;    //!< per-wire knobs (name unset)
    std::size_t channels = 2;    //!< wires in the bus
    std::size_t ticks = 3;       //!< scheduler rounds to run
    FaultPlan faults;            //!< empty for fault-free cases
    std::size_t faultWire = 0;   //!< channel carrying the plan
    bool binomialEligible = false; //!< analytic engine serves every
                                   //!< measurement of this case
    std::vector<RequestStep> requests; //!< service request schedule
    bool storeBacked = false;    //!< run against an EnrollmentDb with
                                 //!< an eviction-churning budget
    FaultPlan storageFaults;     //!< storage plan for the db (empty
                                 //!< for most cases)
};

/** @return case count: DIVOT_PROPERTY_CASES or 64. */
inline std::size_t
caseCount()
{
    if (const char *env = std::getenv("DIVOT_PROPERTY_CASES")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<std::size_t>(parsed);
    }
    return 64;
}

/**
 * Generate case `index`. All draws come from a stable fork of the
 * harness seed, so the case is independent of how many cases run and
 * of every other case.
 */
inline PropertyCase
generateCase(std::size_t index)
{
    Rng rng = Rng(0xd1507ULL).forkStable(0x9000ULL + index);
    PropertyCase pc;
    pc.index = index;
    pc.seed = rng.next();

    // Fleet shape: small enough to keep 64 cases fast, varied enough
    // to exercise both policies and under-provisioned pools.
    pc.channels = 2 + rng.uniformInt(2);             // 2-3 wires
    pc.fleet.instruments = 1 + rng.uniformInt(pc.channels);
    pc.fleet.policy = rng.bernoulli(0.5)
        ? SchedulerPolicy::RiskWeighted : SchedulerPolicy::RoundRobin;
    pc.ticks = 3 + rng.uniformInt(2);                // 3-4 rounds

    // Channel / instrument knobs, all within validated ranges.
    pc.channel.lineLength = rng.uniform(0.08, 0.14);
    pc.channel.enrollReps = 4 + rng.uniformInt(3);   // 4-6
    pc.channel.itdr.trialsPerPhase =
        static_cast<unsigned>(120 + rng.uniformInt(81));  // 120-200
    pc.channel.itdr.counterWidthBits =
        static_cast<unsigned>(10 + rng.uniformInt(3));    // 10-12
    pc.channel.itdr.traceCacheCapacity = rng.uniformInt(3); // 0-2
    pc.channel.itdr.batchedStrobes = rng.bernoulli(0.75);
    pc.channel.auth.averageWindow = 2 + rng.uniformInt(6);

    // Strobe engine: the analytic binomial path serves a measurement
    // only on a jitter-free clock-lane sweep with no extra noise and
    // no metastable band; anything else falls back to Sampled. Half
    // the cases request Binomial; a subset of those is deliberately
    // made ineligible so the fallback accounting gets exercised too.
    if (rng.bernoulli(0.5)) {
        pc.channel.itdr.strobeModel = StrobeModel::Binomial;
        if (rng.bernoulli(0.3)) {
            pc.channel.itdr.pll.jitterRms = 0.5e-12;  // forces fallback
            pc.binomialEligible = false;
        } else {
            pc.binomialEligible = true;
        }
    }

    // A third of the cases carry an instrument fault plan (never a
    // physical attack: these invariants are about the pipeline's own
    // bookkeeping, not detection).
    if (index % 3 == 2) {
        const uint64_t start = rng.uniformInt(3);
        switch (rng.uniformInt(3)) {
          case 0:
            pc.faults.comparatorStuck(start, 1 + rng.uniformInt(2),
                                      rng.bernoulli(0.5));
            break;
          case 1:
            pc.faults.offsetDrift(start, 1 + rng.uniformInt(2),
                                  rng.uniform(0.5e-3, 3e-3));
            break;
          default:
            pc.faults.budgetOverrun(start, 1, rng.uniform(2.0, 4.0));
            break;
        }
        pc.faultWire = rng.uniformInt(pc.channels);
    }

    // Reactor scheduling mode rides on the tail of the draw stream so
    // every field above keeps the value it had before the reactor
    // existed (cases stay reproducible across harness revisions). A
    // third of the cases run the Pipelined mode, with a 1-3 slot
    // fusion epoch; batching stays per-channel there (measureBatch is
    // a Barrier-only knob and is ignored by Pipelined dispatch).
    if (rng.bernoulli(1.0 / 3.0)) {
        pc.fleet.reactor.mode = ReactorMode::Pipelined;
        pc.fleet.reactor.epochSlots = 1 + rng.uniformInt(3);
    }

    // Service request schedule (PR10), riding further down the tail:
    // every draw above keeps its pre-service value. Mixed kinds,
    // deliberate duplicate targets, and unknown names; half the cases
    // run store-backed with an eviction-churning budget so requests
    // race hydration/eviction/scrub, and a quarter of those carry a
    // storage fault plan (handle-preserving faults only — torn
    // writes, bit rot, truncation — so the scheduler's no-reopen
    // store contract holds).
    pc.storeBacked = rng.bernoulli(0.5);
    const std::size_t bursts = 1 + rng.uniformInt(3); // per tick
    for (std::size_t t = 0; t < pc.ticks; ++t) {
        for (std::size_t b = 0; b < bursts; ++b) {
            if (rng.bernoulli(0.4))
                continue; // quiet slot
            RequestStep step;
            step.tick = t;
            step.kind = static_cast<unsigned>(rng.uniformInt(5));
            if (step.kind != 4) { // not FleetSummary
                if (rng.bernoulli(0.15))
                    step.channel =
                        "ghost" + std::to_string(rng.uniformInt(3));
                else
                    step.channel =
                        "w" + std::to_string(
                                  rng.uniformInt(pc.channels));
            }
            pc.requests.push_back(step);
        }
    }
    if (pc.storeBacked && rng.bernoulli(0.25)) {
        const uint64_t at = rng.uniformInt(6);
        switch (rng.uniformInt(3)) {
          case 0:
            pc.storageFaults.storageTornWrite(at);
            break;
          case 1:
            pc.storageFaults.storageBitRot(at, 1, 12.0);
            break;
          default:
            pc.storageFaults.storageTruncation(at, 0.55);
            break;
        }
    }
    return pc;
}

/**
 * Build and run the case's fleet at the given thread count and return
 * the scheduler (whose Telemetry holds the run's full accounting).
 * A fresh FaultInjector is created per run so the injected schedule
 * restarts from measurement 0. `measure_batch` overrides the fleet's
 * cross-channel kernel batching width (0 keeps per-channel probing)
 * so the batched-vs-per-channel invariant can rerun the same case
 * both ways.
 */
inline ChannelScheduler
runCase(const PropertyCase &pc, unsigned threads,
        std::size_t measure_batch = 0)
{
    FleetConfig cfg = pc.fleet;
    cfg.threads = threads;
    cfg.measureBatch = measure_batch;
    ChannelScheduler fleet(cfg, Rng(pc.seed));
    for (std::size_t c = 0; c < pc.channels; ++c) {
        BusChannelConfig channel = pc.channel;
        channel.name = "w" + std::to_string(c);
        fleet.addChannel(channel);
    }
    fleet.calibrateAll();
    // The injector must outlive the run; keep it owned by the channel
    // scope via a static-free idiom: attach, run, detach.
    FaultInjector injector(pc.faults, Rng(pc.seed ^ 0xfau));
    if (!pc.faults.empty())
        fleet.channel(pc.faultWire).attachFaultInjector(&injector);
    for (std::size_t t = 0; t < pc.ticks; ++t)
        fleet.tick();
    if (!pc.faults.empty())
        fleet.channel(pc.faultWire).attachFaultInjector(nullptr);
    return fleet;
}

} // namespace property
} // namespace divot

#endif // DIVOT_TESTS_PROPERTY_HARNESS_HH
