/**
 * @file
 * Tests for table/CSV/series rendering used by the bench binaries.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

namespace divot {
namespace {

TEST(Table, AlignsColumns)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "2.5"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    // Separator row present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvHasCommasNoPadding)
{
    Table t;
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowCount)
{
    Table t;
    t.setHeader({"x"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumAndSciFormat)
{
    EXPECT_EQ(Table::num(1.5, 3), "1.5");
    EXPECT_EQ(Table::sci(12345.0, 2), "1.23e+04");
}

TEST(Table, MismatchedRowPanics)
{
    Table t;
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(PrintSeries, FormatsPairs)
{
    std::ostringstream os;
    printSeries(os, "curve", {{0.0, 1.0}, {0.5, 2.0}});
    const std::string out = os.str();
    EXPECT_NE(out.find("# curve"), std::string::npos);
    EXPECT_NE(out.find("0.5 2"), std::string::npos);
}

} // namespace
} // namespace divot
