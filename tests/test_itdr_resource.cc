/**
 * @file
 * Tests for the structural resource model against the paper's
 * utilization report (71 registers / 124 LUTs, ~80 % counters).
 */

#include <gtest/gtest.h>

#include "itdr/budget.hh"
#include "itdr/resource.hh"

namespace divot {
namespace {

TEST(ResourceModel, LandsNearPrototypeNumbers)
{
    ItdrConfig cfg;
    const MeasurementBudget b = predictBudget(cfg, 3.3e-9);
    const ResourceEstimate est = estimateResources(cfg, b.bins);
    // The prototype used 71 registers and 124 LUTs; the structural
    // model should land in the same neighbourhood.
    EXPECT_NEAR(static_cast<double>(est.totalRegisters), 71.0, 15.0);
    EXPECT_NEAR(static_cast<double>(est.totalLuts), 124.0, 25.0);
}

TEST(ResourceModel, CountersDominateRegisters)
{
    ItdrConfig cfg;
    const ResourceEstimate est = estimateResources(cfg, 400);
    // Vivado report: ~80 % of registers are counters.
    EXPECT_GT(est.counterRegisterFraction(), 0.55);
    EXPECT_LT(est.counterRegisterFraction(), 0.95);
}

TEST(ResourceModel, WiderCountersCostMore)
{
    ItdrConfig narrow, wide;
    narrow.counterWidthBits = 8;
    wide.counterWidthBits = 24;
    const auto a = estimateResources(narrow, 400);
    const auto b = estimateResources(wide, 400);
    EXPECT_GT(b.totalRegisters, a.totalRegisters);
}

TEST(ResourceModel, SharingAmortizesAcrossBuses)
{
    ItdrConfig cfg;
    const ResourceEstimate est = estimateResources(cfg, 400);
    const unsigned one = est.registersForBuses(1);
    const unsigned two = est.registersForBuses(2);
    const unsigned ten = est.registersForBuses(10);
    EXPECT_EQ(one, est.totalRegisters);
    // The marginal bus costs less than the first (shared PLL / PDM /
    // reconstruction).
    EXPECT_LT(two - one, one);
    // Marginal cost is constant.
    EXPECT_EQ(ten - est.registersForBuses(9), two - one);
    EXPECT_EQ(est.registersForBuses(0), 0u);
}

TEST(ResourceModel, LutSharingConsistent)
{
    ItdrConfig cfg;
    const ResourceEstimate est = estimateResources(cfg, 400);
    EXPECT_EQ(est.lutsForBuses(1), est.totalLuts);
    EXPECT_LT(est.lutsForBuses(2) - est.totalLuts, est.totalLuts);
}

TEST(ResourceModel, DataLaneTriggerCostsMore)
{
    ItdrConfig clock_cfg, data_cfg;
    data_cfg.triggerMode = TriggerMode::DataLane;
    const auto a = estimateResources(clock_cfg, 400);
    const auto b = estimateResources(data_cfg, 400);
    EXPECT_GT(b.totalRegisters, a.totalRegisters);
}

TEST(ResourceModel, ZeroBinsRejected)
{
    ItdrConfig cfg;
    EXPECT_DEATH(estimateResources(cfg, 0), "bins");
}

} // namespace
} // namespace divot
