/**
 * @file
 * Unit and property tests for util/math: the normal CDF pair used by
 * APC reconstruction, interpolation helpers, and number theory bits.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/math.hh"

namespace divot {
namespace {

TEST(NormalCdf, KnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.0), 0.8413447460685429, 1e-12);
    EXPECT_NEAR(normalCdf(-1.0), 0.15865525393145705, 1e-12);
    EXPECT_NEAR(normalCdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalCdf, Monotone)
{
    double prev = -1.0;
    for (double x = -8.0; x <= 8.0; x += 0.05) {
        const double p = normalCdf(x);
        EXPECT_GE(p, prev);
        prev = p;
    }
}

TEST(NormalCdf, SymmetryAroundZero)
{
    for (double x = 0.0; x < 6.0; x += 0.37)
        EXPECT_NEAR(normalCdf(x) + normalCdf(-x), 1.0, 1e-12);
}

TEST(NormalPdf, PeakAndSymmetry)
{
    EXPECT_NEAR(normalPdf(0.0), 0.3989422804014327, 1e-12);
    for (double x = 0.1; x < 5.0; x += 0.31)
        EXPECT_NEAR(normalPdf(x), normalPdf(-x), 1e-15);
}

/** Roundtrip property: Phi^{-1}(Phi(x)) == x over a wide span. */
class InvCdfRoundtrip : public ::testing::TestWithParam<double>
{
};

TEST_P(InvCdfRoundtrip, Roundtrip)
{
    // Tail tolerance: near |x| ~ 6 the probability sits ~1e-9 from 1,
    // so double rounding in p-space limits x-space precision to ~1e-7.
    const double x = GetParam();
    EXPECT_NEAR(normalInvCdf(normalCdf(x)), x, 1e-9 + 1e-7 * std::fabs(x));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InvCdfRoundtrip,
    ::testing::Values(-6.0, -4.0, -2.5, -1.0, -0.25, -1e-5, 0.0, 1e-5,
                      0.25, 1.0, 2.5, 4.0, 6.0));

TEST(NormalInvCdf, ClampsSaturatedProbabilities)
{
    EXPECT_TRUE(std::isfinite(normalInvCdf(0.0)));
    EXPECT_TRUE(std::isfinite(normalInvCdf(1.0)));
    EXPECT_LT(normalInvCdf(0.0), -10.0);
    EXPECT_GT(normalInvCdf(1.0), 6.0);
}

TEST(Linspace, EndpointsAndSpacing)
{
    const auto g = linspace(-1.0, 1.0, 5);
    ASSERT_EQ(g.size(), 5u);
    EXPECT_DOUBLE_EQ(g.front(), -1.0);
    EXPECT_DOUBLE_EQ(g.back(), 1.0);
    EXPECT_DOUBLE_EQ(g[1] - g[0], 0.5);
}

TEST(Linspace, DegenerateSizes)
{
    EXPECT_TRUE(linspace(0, 1, 0).empty());
    const auto one = linspace(3.5, 9.0, 1);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_DOUBLE_EQ(one[0], 3.5);
}

TEST(InterpLinear, InterpolatesAndClamps)
{
    const std::vector<double> xs{0.0, 1.0, 2.0};
    const std::vector<double> ys{0.0, 10.0, 0.0};
    EXPECT_DOUBLE_EQ(interpLinear(xs, ys, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(interpLinear(xs, ys, 1.5), 5.0);
    EXPECT_DOUBLE_EQ(interpLinear(xs, ys, -3.0), 0.0);
    EXPECT_DOUBLE_EQ(interpLinear(xs, ys, 7.0), 0.0);
}

TEST(Gcd, BasicsAndCoprime)
{
    EXPECT_EQ(gcdU64(12, 18), 6u);
    EXPECT_EQ(gcdU64(7, 13), 1u);
    EXPECT_EQ(gcdU64(0, 5), 5u);
    EXPECT_TRUE(coprime(5, 6));
    EXPECT_TRUE(coprime(11, 12));
    EXPECT_FALSE(coprime(6, 9));
}

TEST(InvertMonotone, RecoversInputOfCubic)
{
    auto f = [](double x) { return x * x * x; };
    for (double target : {-8.0, -1.0, 0.0, 0.125, 27.0}) {
        const double x = invertMonotone(f, target, -4.0, 4.0);
        EXPECT_NEAR(f(x), target, 1e-9);
    }
}

TEST(ClampTo, Bounds)
{
    EXPECT_DOUBLE_EQ(clampTo(5.0, 0.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(clampTo(-5.0, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(clampTo(0.5, 0.0, 1.0), 0.5);
}

} // namespace
} // namespace divot
