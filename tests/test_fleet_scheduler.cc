/**
 * @file
 * Tests for the bus-fleet layer: BusChannel extraction, the
 * shared-iTDR ChannelScheduler (round-robin and risk-weighted
 * policies), fused FleetAuthenticator verdicts, and the determinism
 * contract — fused verdicts and per-channel measurement streams must
 * be bit-identical at any thread count, including with a fault plan
 * active on one channel.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/divot_system.hh"
#include "fault/fault.hh"
#include "fleet/channel_scheduler.hh"
#include "txline/tamper.hh"

namespace divot {
namespace {

BusChannelConfig
quickChannel(std::size_t index)
{
    BusChannelConfig cfg;
    cfg.lineLength = 0.1;  // keep tests fast
    cfg.enrollReps = 8;
    cfg.name = "wire" + std::to_string(index);
    return cfg;
}

ChannelScheduler
makeFleet(std::size_t channels, unsigned threads, SchedulerPolicy policy,
          std::size_t instruments, uint64_t seed = 42)
{
    FleetConfig cfg;
    cfg.instruments = instruments;
    cfg.policy = policy;
    cfg.threads = threads;
    ChannelScheduler fleet(cfg, Rng(seed));
    for (std::size_t c = 0; c < channels; ++c)
        fleet.addChannel(quickChannel(c));
    fleet.calibrateAll();
    return fleet;
}

/** Everything observable about a run, for bit-exact comparison. */
struct FleetTrace
{
    std::vector<std::size_t> probeChannels;
    std::vector<double> probeSimilarities;
    std::vector<double> probeErrors;
    std::vector<double> fusedSimilarities;
    std::vector<bool> trusted;

    bool operator==(const FleetTrace &) const = default;
};

FleetTrace
runFleet(ChannelScheduler &fleet, std::size_t ticks,
         FaultInjector *injector = nullptr, std::size_t fault_wire = 0)
{
    if (injector != nullptr)
        fleet.channel(fault_wire).attachFaultInjector(injector);
    FleetTrace trace;
    for (std::size_t t = 0; t < ticks; ++t) {
        const FleetRound round = fleet.tick();
        for (const ChannelProbe &probe : round.probes) {
            trace.probeChannels.push_back(probe.channel);
            trace.probeSimilarities.push_back(probe.verdict.similarity);
            trace.probeErrors.push_back(probe.verdict.peakError);
        }
        trace.fusedSimilarities.push_back(round.fused.fusedSimilarity);
        trace.trusted.push_back(round.fused.busTrusted);
    }
    return trace;
}

TEST(FleetScheduler, CleanFleetFusesToTrustedBus)
{
    ChannelScheduler fleet =
        makeFleet(4, 1, SchedulerPolicy::RoundRobin, 4);
    const FleetRound last = fleet.run(6);
    EXPECT_TRUE(last.fused.busAuthenticated);
    EXPECT_FALSE(last.fused.tamperAlarm);
    EXPECT_TRUE(last.fused.busTrusted);
    EXPECT_EQ(last.fused.channels, 4u);
    EXPECT_EQ(last.fused.channelsObserved, 4u);
    EXPECT_EQ(last.fused.contributingWires, 4u);
    EXPECT_EQ(last.fused.quarantinedWires, 0u);
    EXPECT_GT(last.fused.fusedSimilarity,
              fleet.config().similarityThreshold);
    // Every channel probed every tick with a full instrument pool.
    for (std::size_t c = 0; c < 4; ++c)
        EXPECT_EQ(fleet.probeCount(c), 6u);
}

TEST(FleetScheduler, BoundedPoolProbesSubsetPerTick)
{
    ChannelScheduler fleet =
        makeFleet(4, 1, SchedulerPolicy::RoundRobin, 2);
    uint64_t probes = 0;
    for (std::size_t t = 0; t < 8; ++t) {
        const FleetRound round = fleet.tick();
        EXPECT_EQ(round.probes.size(), 2u);
        probes += round.probes.size();
    }
    // Round-robin shares the pool evenly.
    for (std::size_t c = 0; c < 4; ++c)
        EXPECT_EQ(fleet.probeCount(c), probes / 4);
}

TEST(FleetScheduler, BitIdenticalAcrossThreadCounts)
{
    for (const SchedulerPolicy policy :
         {SchedulerPolicy::RoundRobin, SchedulerPolicy::RiskWeighted}) {
        ChannelScheduler f1 = makeFleet(6, 1, policy, 3);
        ChannelScheduler f2 = makeFleet(6, 2, policy, 3);
        ChannelScheduler f8 = makeFleet(6, 8, policy, 3);
        const FleetTrace t1 = runFleet(f1, 10);
        const FleetTrace t2 = runFleet(f2, 10);
        const FleetTrace t8 = runFleet(f8, 10);
        EXPECT_EQ(t1, t2) << schedulerPolicyName(policy);
        EXPECT_EQ(t1, t8) << schedulerPolicyName(policy);
    }
}

TEST(FleetScheduler, BarrierReactorMatchesDefaultScheduler)
{
    // ReactorMode::Barrier is the default; spelling it out must
    // change nothing — the event-driven core replays the pre-reactor
    // operation order exactly (DESIGN.md §15).
    for (const SchedulerPolicy policy :
         {SchedulerPolicy::RoundRobin, SchedulerPolicy::RiskWeighted}) {
        ChannelScheduler implicit = makeFleet(5, 2, policy, 3);
        FleetConfig cfg;
        cfg.instruments = 3;
        cfg.policy = policy;
        cfg.threads = 2;
        cfg.reactor.mode = ReactorMode::Barrier;
        ChannelScheduler explicit_barrier(cfg, Rng(42));
        for (std::size_t c = 0; c < 5; ++c)
            explicit_barrier.addChannel(quickChannel(c));
        explicit_barrier.calibrateAll();
        const FleetTrace a = runFleet(implicit, 8);
        const FleetTrace b = runFleet(explicit_barrier, 8);
        EXPECT_EQ(a, b) << schedulerPolicyName(policy);
    }
}

TEST(FleetScheduler, PipelinedBitIdenticalAcrossThreadCounts)
{
    // The thread x policy determinism matrix, pipelined column: probe
    // completions are consumed at queue positions fixed at dispatch,
    // so the trace is a pure function of (seed, config) here too.
    auto makePipelined = [](unsigned threads, SchedulerPolicy policy) {
        FleetConfig cfg;
        cfg.instruments = 3;
        cfg.policy = policy;
        cfg.threads = threads;
        cfg.reactor.mode = ReactorMode::Pipelined;
        cfg.reactor.epochSlots = 2;
        ChannelScheduler fleet(cfg, Rng(42));
        for (std::size_t c = 0; c < 6; ++c) {
            BusChannelConfig ch = quickChannel(c);
            ch.lineLength = 0.06 + 0.012 * static_cast<double>(c);
            fleet.addChannel(ch);
        }
        fleet.calibrateAll();
        return fleet;
    };
    for (const SchedulerPolicy policy :
         {SchedulerPolicy::RoundRobin, SchedulerPolicy::RiskWeighted}) {
        ChannelScheduler f1 = makePipelined(1, policy);
        ChannelScheduler f2 = makePipelined(2, policy);
        ChannelScheduler f8 = makePipelined(8, policy);
        const FleetTrace t1 = runFleet(f1, 10);
        const FleetTrace t2 = runFleet(f2, 10);
        const FleetTrace t8 = runFleet(f8, 10);
        EXPECT_EQ(t1, t2) << schedulerPolicyName(policy);
        EXPECT_EQ(t1, t8) << schedulerPolicyName(policy);
    }
}

TEST(FleetScheduler, BinomialStrobeModelRunsFleetEndToEnd)
{
    // The analytic strobe engine plumbs through BusChannel and the
    // scheduler: a binomial fleet must fuse to a trusted bus and stay
    // bit-identical across thread counts (lane seeding is forkStable,
    // so the shorter binomial draw streams are just as deterministic).
    auto makeBinomialFleet = [](unsigned threads) {
        FleetConfig cfg;
        cfg.instruments = 3;
        cfg.policy = SchedulerPolicy::RoundRobin;
        cfg.threads = threads;
        ChannelScheduler fleet(cfg, Rng(42));
        for (std::size_t c = 0; c < 4; ++c) {
            BusChannelConfig ch = quickChannel(c);
            ch.itdr.strobeModel = StrobeModel::Binomial;
            fleet.addChannel(ch);
        }
        fleet.calibrateAll();
        return fleet;
    };
    ChannelScheduler f1 = makeBinomialFleet(1);
    ChannelScheduler f4 = makeBinomialFleet(4);
    const FleetTrace t1 = runFleet(f1, 8);
    const FleetTrace t4 = runFleet(f4, 8);
    EXPECT_EQ(t1, t4);

    ChannelScheduler verdict_fleet = makeBinomialFleet(1);
    const FleetRound last = verdict_fleet.run(6);
    EXPECT_TRUE(last.fused.busTrusted);
    EXPECT_GT(last.fused.fusedSimilarity,
              verdict_fleet.config().similarityThreshold);
}

TEST(FleetScheduler, BatchedKernelArenaBitIdenticalToPerChannel)
{
    // Cross-channel kernel batching (FleetConfig::measureBatch)
    // shares one SoA arena per probe group. The arena is fully
    // overwritten per measurement, so batched scheduling must leave
    // no trace in the results: every batch width — including widths
    // that don't divide the probe count — yields the same bytes as
    // per-channel mode, at any thread count.
    auto makeBatchedFleet = [](std::size_t batch, unsigned threads) {
        FleetConfig cfg;
        cfg.instruments = 6;
        cfg.policy = SchedulerPolicy::RoundRobin;
        cfg.threads = threads;
        cfg.measureBatch = batch;
        ChannelScheduler fleet(cfg, Rng(42));
        for (std::size_t c = 0; c < 6; ++c) {
            BusChannelConfig ch = quickChannel(c);
            ch.itdr.strobeModel = StrobeModel::Binomial;
            fleet.addChannel(ch);
        }
        fleet.calibrateAll();
        return fleet;
    };
    ChannelScheduler base = makeBatchedFleet(0, 1);
    const FleetTrace want = runFleet(base, 8);
    for (const std::size_t batch : {2ul, 4ul, 6ul}) {
        for (const unsigned threads : {1u, 4u}) {
            ChannelScheduler fleet = makeBatchedFleet(batch, threads);
            const FleetTrace got = runFleet(fleet, 8);
            EXPECT_EQ(got, want)
                << "batch=" << batch << " threads=" << threads;
        }
    }
}

TEST(FleetScheduler, BitIdenticalWithFaultPlanActive)
{
    // Instrument faults on one channel must not break the
    // determinism contract: the injector draws from its own stable
    // stream keyed by measurement index.
    const FaultPlan plan =
        FaultPlan{}.emiBurst(2, 2, 2.5e-3, 25e6).budgetOverrun(6, 3, 2.0);
    for (const SchedulerPolicy policy :
         {SchedulerPolicy::RoundRobin, SchedulerPolicy::RiskWeighted}) {
        ChannelScheduler f1 = makeFleet(4, 1, policy, 2);
        ChannelScheduler f8 = makeFleet(4, 8, policy, 2);
        FaultInjector inj1(plan, Rng(7).forkStable(1));
        FaultInjector inj8(plan, Rng(7).forkStable(1));
        const FleetTrace t1 = runFleet(f1, 12, &inj1, 1);
        const FleetTrace t8 = runFleet(f8, 12, &inj8, 1);
        EXPECT_EQ(t1, t8) << schedulerPolicyName(policy);
    }
}

TEST(FleetScheduler, RiskWeightedProbesSuspectChannelMoreOften)
{
    // Channel 1's instrument is persistently overrunning its budget,
    // so it descends the degradation ladder; the risk-weighted policy
    // should spend the single shared instrument on it far more often
    // than on its healthy siblings.
    const FaultPlan plan = FaultPlan{}.budgetOverrun(0, 200, 2.0);

    ChannelScheduler weighted =
        makeFleet(4, 1, SchedulerPolicy::RiskWeighted, 1);
    FaultInjector inj_w(plan, Rng(9));
    runFleet(weighted, 32, &inj_w, 1);

    ChannelScheduler robin =
        makeFleet(4, 1, SchedulerPolicy::RoundRobin, 1);
    FaultInjector inj_r(plan, Rng(9));
    runFleet(robin, 32, &inj_r, 1);

    // Round-robin ignores state: even split.
    EXPECT_EQ(robin.probeCount(1), 8u);
    // Risk-weighted re-probes the suspect channel more often than the
    // fixed rotation would, at the expense of healthy channels.
    EXPECT_GT(weighted.probeCount(1), robin.probeCount(1));
    EXPECT_GT(weighted.probeCount(1), weighted.probeCount(3));
    // Healthy channels still get probed eventually (staleness grows).
    for (std::size_t c = 0; c < 4; ++c)
        EXPECT_GT(weighted.probeCount(c), 0u);
}

TEST(FleetScheduler, SingleTappedWireTripsFusedAlarm)
{
    ChannelScheduler fleet =
        makeFleet(4, 2, SchedulerPolicy::RoundRobin, 4);
    fleet.run(2);
    fleet.channel(2).stageAttack(MagneticProbe(0.5));
    FleetRound last;
    for (std::size_t t = 0; t < 16 && !last.fused.tamperAlarm; ++t)
        last = fleet.tick();
    EXPECT_TRUE(last.fused.tamperAlarm);
    EXPECT_FALSE(last.fused.busTrusted);
    EXPECT_GE(last.fused.tamperedWires, 1u);
    EXPECT_EQ(fleet.channel(2).state(), AuthState::TamperAlert);
    EXPECT_EQ(fleet.channel(0).state(), AuthState::Monitoring);
}

TEST(FleetScheduler, CacheStatsAggregateAcrossChannels)
{
    ChannelScheduler fleet =
        makeFleet(3, 1, SchedulerPolicy::RoundRobin, 3);
    fleet.run(4);
    const FleetCacheStats stats = fleet.cacheStats();
    ASSERT_EQ(stats.perChannel.size(), 3u);
    uint64_t hits = 0, misses = 0, evictions = 0;
    for (const ChannelCacheStats &cs : stats.perChannel) {
        hits += cs.hits;
        misses += cs.misses;
        evictions += cs.evictions;
    }
    EXPECT_EQ(stats.totals.hits, hits);
    EXPECT_EQ(stats.totals.misses, misses);
    EXPECT_EQ(stats.totals.evictions, evictions);
    // Enrollment + steady monitoring of an unchanged line reuses the
    // clean-trace entry heavily.
    EXPECT_GT(stats.totals.hits, 0u);
    EXPECT_GT(stats.totals.misses, 0u);
}

TEST(FleetScheduler, FacadeMatchesStandaloneChannel)
{
    // DivotSystem is a thin facade over BusChannel: same config, same
    // seed, bit-identical verdict stream.
    DivotSystemConfig cfg = quickChannel(0);
    DivotSystem facade(cfg, Rng(11));
    BusChannel channel(cfg, Rng(11));
    facade.calibrate();
    channel.calibrate();
    for (int i = 0; i < 4; ++i) {
        const AuthVerdict a = facade.monitorOnce();
        const AuthVerdict b = channel.monitorOnce();
        EXPECT_EQ(a.similarity, b.similarity);
        EXPECT_EQ(a.peakError, b.peakError);
        EXPECT_EQ(a.authenticated, b.authenticated);
    }
    EXPECT_EQ(facade.elapsed(), channel.elapsed());
}

} // namespace
} // namespace divot
