/**
 * @file
 * Golden-snapshot test: a canonical seeded fleet scenario — tamper on
 * one wire included — must export byte-for-byte the JSON checked in
 * at tests/golden/telemetry_snapshot.json.
 *
 * Regeneration: run the binary with `--update-golden` (or set
 * DIVOT_UPDATE_GOLDEN=1) after an intentional change to the telemetry
 * schema or the underlying physics, then review the golden diff like
 * any other code change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "fleet/channel_scheduler.hh"
#include "service/fleet_service.hh"
#include "store/enrollment_db.hh"
#include "store/io.hh"
#include "txline/tamper.hh"

#ifndef DIVOT_GOLDEN_DIR
#error "DIVOT_GOLDEN_DIR must point at the checked-in golden directory"
#endif

namespace divot {
namespace {

bool g_update_golden = false;

std::string
goldenPath()
{
    return std::string(DIVOT_GOLDEN_DIR) + "/telemetry_snapshot.json";
}

/** The canonical scenario: every knob fixed, one wire tampered. */
std::string
canonicalSnapshot(unsigned threads)
{
    FleetConfig cfg;
    cfg.instruments = 2;
    cfg.policy = SchedulerPolicy::RiskWeighted;
    cfg.threads = threads;
    ChannelScheduler fleet(cfg, Rng(20260806));
    for (std::size_t c = 0; c < 3; ++c) {
        BusChannelConfig channel;
        channel.lineLength = 0.1;
        channel.enrollReps = 8;
        channel.name = "wire" + std::to_string(c);
        fleet.addChannel(channel);
    }
    fleet.calibrateAll();

    // Store-backed persistence: the golden locks the store.* counter
    // schema too. A fresh directory per call keeps every count
    // reproducible; the tight resident budget forces hydrate/evict
    // churn so those counters are exercised, not just registered.
    static int invocation = 0;
    const std::string dir = std::string(::testing::TempDir()) +
        "golden_store_" + std::to_string(invocation++);
    store::ensureDir(dir);
    for (unsigned s = 0; s < 4; ++s) {
        const std::string shard =
            dir + "/shard-" + std::to_string(s) + ".bin";
        store::removeFile(shard);
        store::removeFile(shard + ".tmp");
    }
    store::removeFile(dir + "/journal.wal");
    store::EnrollmentDbConfig dbCfg;
    dbCfg.directory = dir;
    dbCfg.shards = 4;
    dbCfg.overlayFlushRecords = 2;
    store::EnrollmentDb db(dbCfg);
    db.attachTelemetry(&fleet.telemetry());
    if (!db.open())
        return "enrollment db failed to open";
    fleet.attachStore(&db, fleet.channel(0).enrollmentBytes() * 2);

    // Request front end: the golden also locks the service.* counter
    // schema and the request spans' placement in the span ring.
    service::FleetService svc(fleet);

    for (int t = 0; t < 3; ++t)
        fleet.tick();
    // Probe attached to wire 1 mid-run: the remaining ticks see the
    // tampered line, producing verdict flips and state-ladder events.
    fleet.channel(1).stageAttack(MagneticProbe(0.5, 0.4));
    for (int t = 0; t < 6; ++t)
        fleet.tick();

    // A store-backed request burst: every kind, one unknown name, and
    // a per-channel overflow — stable service.* counters for the
    // golden. Extra ticks drain every parked request so no span is
    // left open in the exported ring.
    service::ServiceRequest rq;
    uint64_t id = 900;
    rq.id = id++;
    rq.kind = service::RequestKind::QuarantineStatus;
    rq.channel = "wire1";
    svc.submit(rq);
    rq.id = id++;
    rq.kind = service::RequestKind::Verify;
    rq.channel = "wire0";
    svc.submit(rq);
    rq.id = id++;
    rq.kind = service::RequestKind::Verify;
    rq.channel = "wire2";
    svc.submit(rq);
    rq.id = id++;
    rq.kind = service::RequestKind::FleetSummary;
    rq.channel.clear();
    svc.submit(rq);
    rq.id = id++;
    rq.kind = service::RequestKind::Enroll;
    rq.channel = "wire0";
    svc.submit(rq);
    rq.id = id++;
    rq.kind = service::RequestKind::Verify;
    rq.channel = "ghost";
    svc.submit(rq); // Unknown — rejected at admission
    for (int k = 0; k < 5; ++k) {
        rq.id = id++;
        rq.kind = service::RequestKind::Verify;
        rq.channel = "wire1";
        svc.submit(rq); // overflows requestChannelDepth — Busy
    }
    for (int t = 0; t < 4 && svc.pendingRequests() > 0; ++t)
        fleet.tick();

    return fleet.telemetry().exportJson();
}

TEST(TelemetryGolden, CanonicalFleetSnapshotMatchesGolden)
{
    const std::string snapshot = canonicalSnapshot(1);

    if (g_update_golden) {
        std::ofstream out(goldenPath(), std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << goldenPath();
        out << snapshot;
        GTEST_SKIP() << "golden regenerated at " << goldenPath();
    }

    std::ifstream in(goldenPath(), std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden " << goldenPath()
        << " — regenerate with --update-golden";
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string golden = buf.str();

    EXPECT_EQ(snapshot, golden)
        << "telemetry snapshot drifted from the golden; if the change "
           "is intentional, regenerate with --update-golden and review "
           "the diff";
}

TEST(TelemetryGolden, SnapshotIdenticalAcrossThreadCounts)
{
    // The golden contract only holds if the export itself is
    // scheduling-independent: the same scenario at 1 and 4 workers
    // must serialize to the same bytes.
    EXPECT_EQ(canonicalSnapshot(1), canonicalSnapshot(4));
}

} // namespace
} // namespace divot

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update-golden")
            divot::g_update_golden = true;
    }
    if (const char *env = std::getenv("DIVOT_UPDATE_GOLDEN")) {
        if (env[0] != '\0' && env[0] != '0')
            divot::g_update_golden = true;
    }
    return RUN_ALL_TESTS();
}
