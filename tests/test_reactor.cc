/**
 * @file
 * Tests for the event-driven fleet core (DESIGN.md §15): the
 * CompletionQueue ordering seam, the Reactor's deterministic
 * (vtime, seq) event order and instrument accounting, the Pipelined
 * scheduling mode's thread-count bit-identity (with and without fault
 * plans and a backing store), its utilization win over the Barrier
 * mode on a heterogeneous fleet, and the operator re-enrollment path
 * out of PendingReenroll under both policies — including a persist
 * that dies on an injected storage fault.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hh"
#include "fleet/channel_scheduler.hh"
#include "fleet/reactor.hh"
#include "store/enrollment_db.hh"
#include "store/io.hh"
#include "util/completion_queue.hh"
#include "util/thread_pool.hh"

namespace divot {
namespace {

// ---------------------------------------------------------------------
// CompletionQueue
// ---------------------------------------------------------------------

TEST(CompletionQueue, TicketsAreSeriallyAssignedFromOne)
{
    ThreadPool pool(2);
    CompletionQueue cq(pool);
    std::vector<CompletionQueue::Ticket> tickets;
    for (int i = 0; i < 4; ++i)
        tickets.push_back(cq.submit([] {}));
    for (std::size_t i = 0; i < tickets.size(); ++i)
        EXPECT_EQ(tickets[i], i + 1);
    EXPECT_EQ(cq.issued(), 4u);
    cq.drainAll();
    for (const CompletionQueue::Ticket t : tickets)
        cq.wait(t);
    EXPECT_EQ(cq.outstanding(), 0u);
}

TEST(CompletionQueue, CallerChoosesConsumptionOrder)
{
    // Tasks finish in scheduler order, but the consumer waits them in
    // reverse: every wait must still return after exactly its own
    // task, with its side effect visible.
    ThreadPool pool(4);
    CompletionQueue cq(pool);
    std::vector<int> results(4, 0);
    std::vector<CompletionQueue::Ticket> tickets;
    for (int i = 0; i < 4; ++i) {
        tickets.push_back(cq.submit([&results, i] {
            // Earlier tickets sleep longer, so raw completion order
            // inverts submission order.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(3 * (4 - i)));
            results[static_cast<std::size_t>(i)] = i + 1;
        }));
    }
    for (std::size_t i = tickets.size(); i-- > 0;) {
        cq.wait(tickets[i]);
        EXPECT_EQ(results[i], static_cast<int>(i) + 1);
    }
}

TEST(CompletionQueue, ExceptionRethrownAtItsOwnWait)
{
    ThreadPool pool(2);
    CompletionQueue cq(pool);
    const CompletionQueue::Ticket ok = cq.submit([] {});
    const CompletionQueue::Ticket bad = cq.submit(
        [] { throw std::runtime_error("probe exploded"); });
    EXPECT_NO_THROW(cq.wait(ok));
    EXPECT_THROW(cq.wait(bad), std::runtime_error);
}

TEST(CompletionQueue, SubmitSerialRunsInOrderWithConsecutiveTickets)
{
    ThreadPool pool(4);
    CompletionQueue cq(pool);
    std::vector<int> order;
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 3; ++i)
        tasks.push_back([&order, i] { order.push_back(i); });
    const CompletionQueue::Ticket first = cq.submitSerial(
        std::move(tasks));
    EXPECT_EQ(first, 1u);
    for (int i = 0; i < 3; ++i)
        cq.wait(first + static_cast<CompletionQueue::Ticket>(i));
    // One worker ran the batch back-to-back in submission order.
    ASSERT_EQ(order.size(), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(cq.submitSerial({}), 0u);
}

TEST(CompletionQueueDeathTest, WaitingAnUnknownTicketIsFatal)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ThreadPool pool(1);
    CompletionQueue cq(pool);
    const CompletionQueue::Ticket t = cq.submit([] {});
    cq.wait(t);
    EXPECT_DEATH(cq.wait(t), "unknown ticket");
}

// ---------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------

TEST(Reactor, PopsInVirtualTimeOrder)
{
    Reactor reactor(ReactorConfig{}, 1);
    reactor.schedule(ReactorEventType::FuseEpoch, 3.0);
    reactor.schedule(ReactorEventType::ProbeComplete, 1.0);
    reactor.schedule(ReactorEventType::HydrateRequest, 2.0);
    EXPECT_EQ(reactor.depth(), 3u);
    EXPECT_EQ(reactor.pop().type, ReactorEventType::ProbeComplete);
    EXPECT_EQ(reactor.pop().type, ReactorEventType::HydrateRequest);
    EXPECT_EQ(reactor.pop().type, ReactorEventType::FuseEpoch);
    EXPECT_TRUE(reactor.empty());
}

TEST(Reactor, TiesBreakOnScheduleOrder)
{
    Reactor reactor(ReactorConfig{}, 1);
    for (std::size_t c = 0; c < 5; ++c)
        reactor.schedule(ReactorEventType::ProbeComplete, 1.0, c);
    for (std::size_t c = 0; c < 5; ++c) {
        const ReactorEvent event = reactor.pop();
        EXPECT_EQ(event.channel, c);
        EXPECT_EQ(event.seq, c);
    }
}

TEST(Reactor, SequenceNumbersSpanQueuedAndImmediateEvents)
{
    Reactor reactor(ReactorConfig{}, 1);
    const uint64_t first =
        reactor.schedule(ReactorEventType::HydrateRequest, 0.0);
    const ReactorEvent imm = reactor.dispatchImmediate(
        ReactorEventType::RecalibrateRequest, 0.0, 3);
    const uint64_t last =
        reactor.schedule(ReactorEventType::FuseEpoch, 0.0);
    EXPECT_EQ(imm.seq, first + 1);
    EXPECT_EQ(last, imm.seq + 1);
    EXPECT_EQ(imm.channel, 3u);
    // Immediate events count as consumed without touching the queue.
    EXPECT_EQ(reactor.depth(), 2u);
    EXPECT_EQ(reactor.consumed(ReactorEventType::RecalibrateRequest),
              1u);
    reactor.pop();
    reactor.pop();
    EXPECT_EQ(reactor.consumedTotal(), 3u);
    EXPECT_EQ(reactor.queueHighWater(), 2u);
}

TEST(Reactor, InstrumentAccountingDrivesUtilization)
{
    Reactor reactor(ReactorConfig{}, 2);
    EXPECT_EQ(reactor.freeInstruments(), 2u);
    reactor.acquireInstrument();
    reactor.acquireInstrument();
    EXPECT_EQ(reactor.freeInstruments(), 0u);
    reactor.releaseInstrument(1.0);
    reactor.releaseInstrument(0.5);
    EXPECT_EQ(reactor.freeInstruments(), 2u);
    EXPECT_DOUBLE_EQ(reactor.busySeconds(), 1.5);
    // busy 1.5 s over 2 instruments x 1 s of virtual time = 0.75.
    EXPECT_DOUBLE_EQ(reactor.utilization(1.0), 0.75);
    EXPECT_EQ(reactor.utilizationPerMille(1.0), 750);
    // Saturates at 1, and reads 0 before any time has elapsed.
    EXPECT_DOUBLE_EQ(reactor.utilization(0.5), 1.0);
    EXPECT_DOUBLE_EQ(reactor.utilization(0.0), 0.0);
}

TEST(ReactorDeathTest, BoundedQueueOverflowIsFatal)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ReactorConfig cfg;
    cfg.maxQueue = 2;
    Reactor reactor(cfg, 1);
    reactor.schedule(ReactorEventType::ScrubStep, 0.0);
    reactor.schedule(ReactorEventType::ScrubStep, 0.0);
    EXPECT_DEATH(reactor.schedule(ReactorEventType::ScrubStep, 0.0),
                 "queue overflow");
}

TEST(ReactorDeathTest, InstrumentOverDispatchIsFatal)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    Reactor reactor(ReactorConfig{}, 1);
    reactor.acquireInstrument();
    EXPECT_DEATH(reactor.acquireInstrument(), "over-dispatch");
}

// ---------------------------------------------------------------------
// Pipelined scheduling mode
// ---------------------------------------------------------------------

BusChannelConfig
quickChannel(std::size_t index, double line_length = 0.1)
{
    BusChannelConfig cfg;
    cfg.lineLength = line_length; // keep tests fast
    cfg.enrollReps = 8;
    cfg.name = "wire" + std::to_string(index);
    return cfg;
}

ChannelScheduler
makePipelinedFleet(std::size_t channels, unsigned threads,
                   SchedulerPolicy policy, std::size_t instruments,
                   std::size_t epoch_slots = 1, uint64_t seed = 42)
{
    FleetConfig cfg;
    cfg.instruments = instruments;
    cfg.policy = policy;
    cfg.threads = threads;
    cfg.reactor.mode = ReactorMode::Pipelined;
    cfg.reactor.epochSlots = epoch_slots;
    ChannelScheduler fleet(cfg, Rng(seed));
    for (std::size_t c = 0; c < channels; ++c)
        fleet.addChannel(quickChannel(c, 0.06 + 0.012 * c));
    fleet.calibrateAll();
    return fleet;
}

/** Everything observable about a run, for bit-exact comparison. */
struct FleetTrace
{
    std::vector<std::size_t> probeChannels;
    std::vector<double> probeSimilarities;
    std::vector<double> probeErrors;
    std::vector<double> fusedSimilarities;
    std::vector<bool> trusted;

    bool operator==(const FleetTrace &) const = default;
};

FleetTrace
runFleet(ChannelScheduler &fleet, std::size_t ticks,
         FaultInjector *injector = nullptr, std::size_t fault_wire = 0)
{
    if (injector != nullptr)
        fleet.channel(fault_wire).attachFaultInjector(injector);
    FleetTrace trace;
    for (std::size_t t = 0; t < ticks; ++t) {
        const FleetRound round = fleet.tick();
        for (const ChannelProbe &probe : round.probes) {
            trace.probeChannels.push_back(probe.channel);
            trace.probeSimilarities.push_back(probe.verdict.similarity);
            trace.probeErrors.push_back(probe.verdict.peakError);
        }
        trace.fusedSimilarities.push_back(round.fused.fusedSimilarity);
        trace.trusted.push_back(round.fused.busTrusted);
    }
    return trace;
}

TEST(PipelinedFleet, FusesToTrustedBusAndKeepsInstrumentsBusy)
{
    ChannelScheduler fleet = makePipelinedFleet(
        6, 1, SchedulerPolicy::RoundRobin, 2, 2);
    const FleetRound last = fleet.run(6);
    EXPECT_TRUE(last.fused.busTrusted);
    EXPECT_GT(last.fused.fusedSimilarity,
              fleet.config().similarityThreshold);
    // A freed instrument is re-dispatched mid-epoch, so an epoch runs
    // more probes than the pool could hold at once.
    EXPECT_GT(last.probes.size(), fleet.config().instruments);
    // Every probe was a real dispatch chain through the reactor.
    EXPECT_EQ(fleet.reactor().consumed(ReactorEventType::ProbeComplete),
              fleet.telemetry().registry().counterValue("fleet.probes"));
    EXPECT_GT(fleet.instrumentUtilization(), 0.0);
}

TEST(PipelinedFleet, BitIdenticalAcrossThreadCounts)
{
    for (const SchedulerPolicy policy :
         {SchedulerPolicy::RoundRobin, SchedulerPolicy::RiskWeighted}) {
        ChannelScheduler f1 = makePipelinedFleet(6, 1, policy, 3, 2);
        ChannelScheduler f2 = makePipelinedFleet(6, 2, policy, 3, 2);
        ChannelScheduler f8 = makePipelinedFleet(6, 8, policy, 3, 2);
        const FleetTrace t1 = runFleet(f1, 10);
        const FleetTrace t2 = runFleet(f2, 10);
        const FleetTrace t8 = runFleet(f8, 10);
        EXPECT_EQ(t1, t2) << schedulerPolicyName(policy);
        EXPECT_EQ(t1, t8) << schedulerPolicyName(policy);
        // The stable telemetry export — which embeds the full event
        // accounting — must also be byte-identical.
        EXPECT_EQ(f1.telemetry().exportJson(),
                  f8.telemetry().exportJson())
            << schedulerPolicyName(policy);
    }
}

TEST(PipelinedFleet, BitIdenticalWithFaultPlanActive)
{
    const FaultPlan plan =
        FaultPlan{}.emiBurst(2, 2, 2.5e-3, 25e6).budgetOverrun(6, 3, 2.0);
    for (const SchedulerPolicy policy :
         {SchedulerPolicy::RoundRobin, SchedulerPolicy::RiskWeighted}) {
        ChannelScheduler f1 = makePipelinedFleet(4, 1, policy, 2, 2);
        ChannelScheduler f8 = makePipelinedFleet(4, 8, policy, 2, 2);
        FaultInjector inj1(plan, Rng(7).forkStable(1));
        FaultInjector inj8(plan, Rng(7).forkStable(1));
        const FleetTrace t1 = runFleet(f1, 12, &inj1, 1);
        const FleetTrace t8 = runFleet(f8, 12, &inj8, 1);
        EXPECT_EQ(t1, t8) << schedulerPolicyName(policy);
    }
}

std::string
freshDbDir(const char *name)
{
    const std::string dir = std::string(::testing::TempDir()) + name;
    store::ensureDir(dir);
    for (unsigned s = 0; s < 8; ++s) {
        const std::string shard =
            dir + "/shard-" + std::to_string(s) + ".bin";
        store::removeFile(shard);
        store::removeFile(shard + ".tmp");
    }
    store::removeFile(dir + "/journal.wal");
    return dir;
}

store::EnrollmentDbConfig
dbConfig(const std::string &dir)
{
    store::EnrollmentDbConfig cfg;
    cfg.directory = dir;
    cfg.shards = 4;
    cfg.overlayFlushRecords = 2;
    return cfg;
}

TEST(PipelinedFleet, BitIdenticalAcrossThreadCountsWithStore)
{
    // Store IO (hydration, eviction, scrub) happens only while the
    // single-threaded loop consumes events, so the IO-event sequence —
    // and with it every verdict — is thread-count invariant even with
    // an eviction-churning budget.
    FleetTrace traces[2];
    std::string exports[2];
    const unsigned threads[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
        ChannelScheduler fleet = makePipelinedFleet(
            4, threads[i], SchedulerPolicy::RoundRobin, 2, 2);
        const std::string dir = freshDbDir(
            i == 0 ? "reactor_store_t1" : "reactor_store_t4");
        store::EnrollmentDb db(dbConfig(dir));
        ASSERT_TRUE(db.open());
        fleet.attachStore(&db, 1); // evict everything unpinned
        traces[i] = runFleet(fleet, 8);
        exports[i] = fleet.telemetry().exportJson();
    }
    EXPECT_EQ(traces[0], traces[1]);
    EXPECT_EQ(exports[0], exports[1]);
}

TEST(PipelinedFleet, OutUtilizesBarrierOnHeterogeneousFleet)
{
    // One slow wire (long line) among five fast ones, pool of two.
    // The barrier slot spans the slowest channel's round, so every
    // barrier tick strands most of both instruments' time; Pipelined
    // back-fills a freed instrument with fast rounds, so its pool
    // must be strictly busier.
    auto build = [](ReactorMode mode) {
        FleetConfig cfg;
        cfg.instruments = 2;
        cfg.policy = SchedulerPolicy::RoundRobin;
        cfg.threads = 1;
        cfg.reactor.mode = mode;
        ChannelScheduler fleet(cfg, Rng(42));
        for (std::size_t c = 0; c < 5; ++c)
            fleet.addChannel(quickChannel(c, 0.05));
        fleet.addChannel(quickChannel(5, 0.25));
        fleet.calibrateAll();
        return fleet;
    };
    ChannelScheduler barrier = build(ReactorMode::Barrier);
    ChannelScheduler pipelined = build(ReactorMode::Pipelined);
    barrier.run(8);
    pipelined.run(8);
    EXPECT_GT(pipelined.instrumentUtilization(),
              barrier.instrumentUtilization());
    // And it converts the extra capacity into real coverage.
    uint64_t barrier_probes = 0, pipelined_probes = 0;
    for (std::size_t c = 0; c < 6; ++c) {
        barrier_probes += barrier.probeCount(c);
        pipelined_probes += pipelined.probeCount(c);
    }
    EXPECT_GT(pipelined_probes, barrier_probes);
}

TEST(PipelinedFleet, ChannelPhasesReturnToIdleBetweenTicks)
{
    ChannelScheduler fleet = makePipelinedFleet(
        3, 2, SchedulerPolicy::RoundRobin, 2);
    for (int t = 0; t < 4; ++t) {
        fleet.tick();
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_EQ(fleet.channelPhase(c), ChannelPhase::Idle);
    }
}

// ---------------------------------------------------------------------
// Operator re-enrollment (RecalibrateRequest path)
// ---------------------------------------------------------------------

class ReenrollTest : public ::testing::TestWithParam<SchedulerPolicy>
{
};

TEST_P(ReenrollTest, FencedChannelRejoinsAfterReenroll)
{
    const SchedulerPolicy policy = GetParam();
    FleetConfig cfg;
    cfg.instruments = 1;
    cfg.policy = policy;
    cfg.threads = 1;
    ChannelScheduler fleet(cfg, Rng(42));
    for (std::size_t c = 0; c < 2; ++c)
        fleet.addChannel(quickChannel(c));
    fleet.calibrateAll();

    const std::string dir = freshDbDir(
        policy == SchedulerPolicy::RoundRobin ? "reenroll_rr"
                                              : "reenroll_rw");
    store::EnrollmentDb db(dbConfig(dir));
    ASSERT_TRUE(db.open());
    fleet.attachStore(&db, 1); // evict everything unpinned

    // Tick 0 probes wire0 and evicts wire1; losing wire1's durable
    // copy fences it on the next hydration attempt.
    fleet.tick();
    ASSERT_TRUE(db.erase("wire1"));
    fleet.tick();
    ASSERT_EQ(fleet.channel(1).state(), AuthState::PendingReenroll);
    ASSERT_EQ(fleet.channelPhase(1), ChannelPhase::Fenced);

    // PendingReenroll -> re-calibrate -> persist -> re-admission.
    const uint64_t recalibrations_before =
        fleet.reactor().consumed(ReactorEventType::RecalibrateRequest);
    ASSERT_TRUE(fleet.reenrollChannel(1));
    EXPECT_EQ(
        fleet.reactor().consumed(ReactorEventType::RecalibrateRequest),
        recalibrations_before + 1);
    EXPECT_NE(fleet.channel(1).state(), AuthState::PendingReenroll);
    EXPECT_EQ(fleet.channelPhase(1), ChannelPhase::Idle);
    store::EnrollmentRecord rec;
    EXPECT_EQ(db.get("wire1", rec), store::DbGetStatus::Ok);

    bool probed1 = false;
    for (int t = 0; t < 6; ++t) {
        const FleetRound round = fleet.tick();
        EXPECT_EQ(round.fused.pendingReenrollWires, 0u);
        for (const ChannelProbe &probe : round.probes)
            probed1 = probed1 || probe.channel == 1u;
    }
    EXPECT_TRUE(probed1);
}

INSTANTIATE_TEST_SUITE_P(
    BothPolicies, ReenrollTest,
    ::testing::Values(SchedulerPolicy::RoundRobin,
                      SchedulerPolicy::RiskWeighted));

TEST(ReenrollTest2, NoStoreAttachedReenrollStillRecalibrates)
{
    FleetConfig cfg;
    cfg.instruments = 2;
    cfg.threads = 1;
    ChannelScheduler fleet(cfg, Rng(42));
    fleet.addChannel(quickChannel(0));
    fleet.addChannel(quickChannel(1));
    fleet.calibrateAll();
    // Storeless fleets have no hydration failures, but the operator
    // entry point still re-calibrates and counts the event.
    EXPECT_TRUE(fleet.reenrollChannel(1));
    EXPECT_EQ(
        fleet.reactor().consumed(ReactorEventType::RecalibrateRequest),
        1u);
}

TEST(ReenrollTest2, FaultedPersistReportsFailureAndCountsFaultEvent)
{
    FleetConfig cfg;
    cfg.instruments = 1;
    cfg.threads = 1;
    ChannelScheduler fleet(cfg, Rng(42));
    for (std::size_t c = 0; c < 2; ++c)
        fleet.addChannel(quickChannel(c));
    fleet.calibrateAll();

    const std::string dir = freshDbDir("reenroll_faulted");
    store::EnrollmentDb db(dbConfig(dir));
    ASSERT_TRUE(db.open());
    fleet.attachStore(&db, 1);

    fleet.tick();
    ASSERT_TRUE(db.erase("wire1"));
    fleet.tick();
    ASSERT_EQ(fleet.channel(1).state(), AuthState::PendingReenroll);

    // The re-enrollment's own put crashes: a storage power cut at the
    // db's next IO event kills the handle mid-persist.
    FaultPlan plan;
    plan.storageCrash(db.ioEvents(), StorageCrashPoint::BeforeCommit);
    const FaultInjector injector(plan, Rng(99));
    db.attachFaultInjector(&injector);

    const uint64_t faults_before =
        fleet.reactor().consumed(ReactorEventType::FaultEvent);
    EXPECT_FALSE(fleet.reenrollChannel(1));
    EXPECT_EQ(fleet.reactor().consumed(ReactorEventType::FaultEvent),
              faults_before + 1);
    EXPECT_FALSE(db.alive());
}

} // namespace
} // namespace divot
