/**
 * @file
 * Tests for the saturating hit counter.
 */

#include <gtest/gtest.h>

#include "itdr/counter.hh"

namespace divot {
namespace {

TEST(HitCounter, CountsHitsAndTrials)
{
    HitCounter c(8);
    c.record(true);
    c.record(false);
    c.record(true);
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.trials(), 3u);
    EXPECT_NEAR(c.probability(), 2.0 / 3.0, 1e-12);
}

TEST(HitCounter, EmptyProbabilityIsZero)
{
    HitCounter c(8);
    EXPECT_DOUBLE_EQ(c.probability(), 0.0);
}

TEST(HitCounter, SaturatesInsteadOfWrapping)
{
    HitCounter c(4);  // max 15 trials
    for (int i = 0; i < 100; ++i)
        c.record(true);
    EXPECT_EQ(c.trials(), 15u);
    EXPECT_EQ(c.hits(), 15u);
    EXPECT_TRUE(c.saturated());
    EXPECT_DOUBLE_EQ(c.probability(), 1.0);
}

TEST(HitCounter, ProbabilityPreservedAtSaturation)
{
    HitCounter c(4);
    for (int i = 0; i < 30; ++i)
        c.record(i % 2 == 0);
    // Counting stopped at 15 trials; probability reflects what was
    // actually counted, never a wrapped value.
    EXPECT_EQ(c.trials(), 15u);
    EXPECT_NEAR(c.probability(), 8.0 / 15.0, 1e-12);
}

TEST(HitCounter, ResetClears)
{
    HitCounter c(8);
    c.record(true);
    c.reset();
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.trials(), 0u);
    EXPECT_FALSE(c.saturated());
}

TEST(HitCounter, WidthValidation)
{
    EXPECT_DEATH(HitCounter(0), "width");
    EXPECT_DEATH(HitCounter(33), "width");
    HitCounter ok(32);
    EXPECT_EQ(ok.widthBits(), 32u);
}

} // namespace
} // namespace divot
