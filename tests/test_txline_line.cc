/**
 * @file
 * Tests for the TransmissionLine container: reflection coefficients,
 * delays, reversed views, validation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "txline/txline.hh"

namespace divot {
namespace {

TransmissionLine
makeLine(std::vector<double> z = {50.0, 52.0, 48.0},
         double zs = 50.0, double zl = 50.0)
{
    return TransmissionLine(std::move(z), 1e-3, 1.5e8, zs, zl, 0.0,
                            "t");
}

TEST(TransmissionLine, GeometryAndDelays)
{
    const auto line = makeLine();
    EXPECT_EQ(line.segments(), 3u);
    EXPECT_DOUBLE_EQ(line.length(), 3e-3);
    EXPECT_DOUBLE_EQ(line.oneWayDelay(), 3e-3 / 1.5e8);
    EXPECT_DOUBLE_EQ(line.roundTripDelay(), 2.0 * 3e-3 / 1.5e8);
}

TEST(TransmissionLine, JunctionReflectionFormula)
{
    const auto line = makeLine({50.0, 75.0});
    EXPECT_DOUBLE_EQ(line.junctionReflection(0), 25.0 / 125.0);
}

TEST(TransmissionLine, LoadAndSourceReflections)
{
    const auto line = makeLine({50.0, 50.0}, 40.0, 100.0);
    EXPECT_DOUBLE_EQ(line.loadReflection(), 50.0 / 150.0);
    EXPECT_DOUBLE_EQ(line.sourceReflection(), -10.0 / 90.0);
}

TEST(TransmissionLine, MatchedEverythingZeroReflection)
{
    const auto line = makeLine({50.0, 50.0, 50.0});
    EXPECT_DOUBLE_EQ(line.junctionReflection(0), 0.0);
    EXPECT_DOUBLE_EQ(line.loadReflection(), 0.0);
    EXPECT_DOUBLE_EQ(line.sourceReflection(), 0.0);
}

TEST(TransmissionLine, DistanceTimeConversionRoundtrip)
{
    const auto line = makeLine();
    const double d = 1.7e-3;
    EXPECT_NEAR(line.distanceAtRoundTripTime(line.roundTripTimeAt(d)),
                d, 1e-15);
}

TEST(TransmissionLine, SegmentAttenuationFromLoss)
{
    TransmissionLine lossy({50.0, 50.0}, 1e-3, 1.5e8, 50.0, 50.0, 2.0);
    EXPECT_NEAR(lossy.segmentAttenuation(), std::exp(-2.0 * 1e-3),
                1e-12);
    const auto lossless = makeLine();
    EXPECT_DOUBLE_EQ(lossless.segmentAttenuation(), 1.0);
}

TEST(TransmissionLine, ReversedViewSwapsEnds)
{
    const auto line = makeLine({10.0, 20.0, 30.0}, 45.0, 55.0);
    const auto rev = reversedView(line);
    EXPECT_DOUBLE_EQ(rev.impedanceAt(0), 30.0);
    EXPECT_DOUBLE_EQ(rev.impedanceAt(2), 10.0);
    EXPECT_DOUBLE_EQ(rev.sourceImpedance(), 55.0);
    EXPECT_DOUBLE_EQ(rev.loadImpedance(), 45.0);
    EXPECT_DOUBLE_EQ(rev.length(), line.length());
}

TEST(TransmissionLine, ReversedViewIsInvolution)
{
    const auto line = makeLine({10.0, 20.0, 30.0}, 45.0, 55.0);
    const auto twice = reversedView(reversedView(line));
    for (std::size_t i = 0; i < line.segments(); ++i)
        EXPECT_DOUBLE_EQ(twice.impedanceAt(i), line.impedanceAt(i));
    EXPECT_DOUBLE_EQ(twice.sourceImpedance(), line.sourceImpedance());
}

TEST(TransmissionLine, SetLoadValidates)
{
    auto line = makeLine();
    line.setLoadImpedance(75.0);
    EXPECT_DOUBLE_EQ(line.loadImpedance(), 75.0);
    EXPECT_DEATH(line.setLoadImpedance(0.0), "positive");
}

TEST(TransmissionLine, ConstructionValidation)
{
    EXPECT_DEATH(makeLine({}), "at least one segment");
    EXPECT_DEATH(makeLine({50.0, -1.0}), "positive");
    EXPECT_DEATH(TransmissionLine({50.0}, 0.0, 1.5e8, 50, 50),
                 "geometry");
    EXPECT_DEATH(TransmissionLine({50.0}, 1e-3, 1.5e8, 0.0, 50),
                 "impedances must be positive");
}

TEST(TransmissionLine, JunctionIndexBoundsPanic)
{
    const auto line = makeLine();
    EXPECT_DEATH(line.junctionReflection(2), "out of range");
}

} // namespace
} // namespace divot
