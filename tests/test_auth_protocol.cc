/**
 * @file
 * Tests for the two-way authentication protocol: both sides enroll,
 * both must pass for the bus to be trusted, and attacks visible from
 * either end break trust.
 */

#include <gtest/gtest.h>

#include "auth/protocol.hh"
#include "txline/manufacturing.hh"
#include "txline/tamper.hh"

namespace divot {
namespace {

TransmissionLine
fabBus(uint64_t seed)
{
    ProcessParams params;
    ManufacturingProcess fab(params, Rng(seed));
    auto z = fab.drawImpedanceProfile(0.12, 0.5e-3);
    return TransmissionLine(std::move(z), 0.5e-3, params.velocity,
                            50.0, 50.3, params.lossNeperPerMeter,
                            "bus");
}

TEST(Protocol, CalibrateThenTrusted)
{
    TwoWayAuthProtocol proto(AuthConfig{}, ItdrConfig{}, Rng(1));
    const auto bus = fabBus(1);
    proto.calibrate(bus, 8);
    EXPECT_TRUE(proto.busTrusted());
    const TwoWayOutcome out = proto.monitorRound(bus);
    EXPECT_TRUE(out.busTrusted);
    EXPECT_TRUE(out.cpu.authenticated);
    EXPECT_TRUE(out.memory.authenticated);
    EXPECT_EQ(out.cpuAction, ReactionAction::Proceed);
    EXPECT_EQ(out.memoryAction, ReactionAction::Proceed);
}

TEST(Protocol, BothSidesEnrolled)
{
    TwoWayAuthProtocol proto(AuthConfig{}, ItdrConfig{}, Rng(2));
    const auto bus = fabBus(2);
    proto.calibrate(bus, 8);
    EXPECT_EQ(proto.cpuSide().state(), AuthState::Monitoring);
    EXPECT_EQ(proto.memorySide().state(), AuthState::Monitoring);
    EXPECT_TRUE(proto.cpuSide().enrolled().valid());
    EXPECT_TRUE(proto.memorySide().enrolled().valid());
}

TEST(Protocol, BusSwapBreaksTrustBothWays)
{
    TwoWayAuthProtocol proto(AuthConfig{}, ItdrConfig{}, Rng(3));
    const auto bus = fabBus(3);
    proto.calibrate(bus, 8);
    const auto foreign = fabBus(77);
    TwoWayOutcome out{};
    for (int i = 0; i < 16; ++i)
        out = proto.monitorRound(foreign);
    EXPECT_FALSE(out.busTrusted);
    EXPECT_FALSE(proto.busTrusted());
    EXPECT_FALSE(out.cpu.authenticated);
    EXPECT_FALSE(out.memory.authenticated);
    // A wholesale swap also pins the error function, so either the
    // mismatch or the tamper reaction is acceptable — but never
    // Proceed.
    EXPECT_NE(out.cpuAction, ReactionAction::Proceed);
    EXPECT_NE(out.memoryAction, ReactionAction::Proceed);
}

TEST(Protocol, TamperNearMemoryEndSeenByBothEnds)
{
    TwoWayAuthProtocol proto(AuthConfig{}, ItdrConfig{}, Rng(4));
    const auto bus = fabBus(4);
    proto.calibrate(bus, 16);
    WireTap tap(0.8, 50.0);  // near the memory end
    const auto attacked = tap.apply(bus);
    TwoWayOutcome out{};
    for (int i = 0; i < 16; ++i)
        out = proto.monitorRound(attacked);
    EXPECT_TRUE(out.cpu.tamperAlarm);
    EXPECT_TRUE(out.memory.tamperAlarm);
    EXPECT_FALSE(out.busTrusted);
    // The CPU sees it at ~80 % of the line; the memory side at ~20 %.
    EXPECT_GT(out.cpu.tamperLocation, 0.6 * bus.length());
    EXPECT_LT(out.memory.tamperLocation, 0.4 * bus.length());
}

TEST(Protocol, TrustRestoredAfterRepair)
{
    TwoWayAuthProtocol proto(AuthConfig{}, ItdrConfig{}, Rng(5));
    const auto bus = fabBus(5);
    proto.calibrate(bus, 8);
    MagneticProbe probe(0.5);
    const auto attacked = probe.apply(bus);
    for (int i = 0; i < 16; ++i)
        proto.monitorRound(attacked);
    EXPECT_FALSE(proto.busTrusted());
    TwoWayOutcome out{};
    for (int i = 0; i < 20; ++i)
        out = proto.monitorRound(bus);
    EXPECT_TRUE(out.busTrusted);
}

TEST(Protocol, PolicyLogsPopulated)
{
    TwoWayAuthProtocol proto(AuthConfig{}, ItdrConfig{}, Rng(6));
    const auto bus = fabBus(6);
    proto.calibrate(bus, 8);
    const auto foreign = fabBus(88);
    for (int i = 0; i < 16; ++i)
        proto.monitorRound(foreign);
    EXPECT_GT(proto.cpuPolicy().deniedCount(), 0u);
    EXPECT_GT(proto.memoryPolicy().deniedCount(), 0u);
    EXPECT_FALSE(proto.cpuPolicy().events().empty());
}

} // namespace
} // namespace divot
