/**
 * @file
 * Reproducibility contract: every stochastic layer is exactly
 * deterministic under a seed and decoupled across forked streams —
 * the property that makes the paper-figure benches regenerable.
 */

#include <gtest/gtest.h>

#include "core/divot_system.hh"
#include "fingerprint/study.hh"
#include "itdr/itdr.hh"
#include "txline/manufacturing.hh"

namespace divot {
namespace {

TEST(Determinism, ItdrMeasurementBitExact)
{
    ProcessParams params;
    ManufacturingProcess fab(params, Rng(1));
    auto z = fab.drawImpedanceProfile(0.1, 0.5e-3);
    TransmissionLine line(std::move(z), 0.5e-3, params.velocity,
                          50.0, 50.2, params.lossNeperPerMeter, "d");
    ITdr a(ItdrConfig{}, Rng(42));
    ITdr b(ItdrConfig{}, Rng(42));
    const IipMeasurement ma = a.measure(line);
    const IipMeasurement mb = b.measure(line);
    ASSERT_EQ(ma.iip.size(), mb.iip.size());
    for (std::size_t i = 0; i < ma.iip.size(); ++i)
        EXPECT_DOUBLE_EQ(ma.iip[i], mb.iip[i]);
    EXPECT_EQ(ma.busCycles, mb.busCycles);
}

TEST(Determinism, StudyScoresBitExact)
{
    StudyConfig cfg;
    cfg.lines = 2;
    cfg.enrollReps = 2;
    cfg.genuinePerLine = 4;
    cfg.impostorPerPair = 2;
    const StudyResult a = GenuineImpostorStudy(cfg, Rng(7)).run();
    const StudyResult b = GenuineImpostorStudy(cfg, Rng(7)).run();
    ASSERT_EQ(a.genuine.size(), b.genuine.size());
    for (std::size_t i = 0; i < a.genuine.size(); ++i)
        EXPECT_DOUBLE_EQ(a.genuine[i], b.genuine[i]);
    EXPECT_DOUBLE_EQ(a.roc.eer, b.roc.eer);
}

TEST(Determinism, DifferentSeedsDifferentFabrication)
{
    DivotSystemConfig cfg;
    cfg.lineLength = 0.05;
    cfg.enrollReps = 2;
    DivotSystem a(cfg, Rng(1));
    DivotSystem b(cfg, Rng(2));
    bool any_diff = false;
    for (std::size_t i = 0; i < a.line().segments(); ++i) {
        if (a.line().impedanceAt(i) != b.line().impedanceAt(i))
            any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Determinism, MeasurementOrderIndependentOfOtherInstruments)
{
    // Creating and running an unrelated instrument must not perturb
    // another instrument's stream (fork isolation).
    ProcessParams params;
    ManufacturingProcess fab(params, Rng(3));
    auto z = fab.drawImpedanceProfile(0.05, 0.5e-3);
    TransmissionLine line(std::move(z), 0.5e-3, params.velocity,
                          50.0, 50.2, params.lossNeperPerMeter, "i");

    Rng master1(99);
    ITdr lone(ItdrConfig{}, master1.fork(1));
    const IipMeasurement ma = lone.measure(line);

    Rng master2(99);
    ITdr first(ItdrConfig{}, master2.fork(1));
    ITdr noisy_neighbor(ItdrConfig{}, master2.fork(2));
    noisy_neighbor.measure(line);  // interleaved activity
    const IipMeasurement mb = first.measure(line);

    ASSERT_EQ(ma.iip.size(), mb.iip.size());
    for (std::size_t i = 0; i < ma.iip.size(); ++i)
        EXPECT_DOUBLE_EQ(ma.iip[i], mb.iip[i]);
}

} // namespace
} // namespace divot
