/**
 * @file
 * Reproducibility contract: every stochastic layer is exactly
 * deterministic under a seed and decoupled across forked streams —
 * the property that makes the paper-figure benches regenerable.
 */

#include <gtest/gtest.h>

#include "core/divot_system.hh"
#include "fault/campaign.hh"
#include "fingerprint/study.hh"
#include "itdr/itdr.hh"
#include "txline/manufacturing.hh"

namespace divot {
namespace {

TEST(Determinism, ItdrMeasurementBitExact)
{
    ProcessParams params;
    ManufacturingProcess fab(params, Rng(1));
    auto z = fab.drawImpedanceProfile(0.1, 0.5e-3);
    TransmissionLine line(std::move(z), 0.5e-3, params.velocity,
                          50.0, 50.2, params.lossNeperPerMeter, "d");
    ITdr a(ItdrConfig{}, Rng(42));
    ITdr b(ItdrConfig{}, Rng(42));
    const IipMeasurement ma = a.measure(line);
    const IipMeasurement mb = b.measure(line);
    ASSERT_EQ(ma.iip.size(), mb.iip.size());
    for (std::size_t i = 0; i < ma.iip.size(); ++i)
        EXPECT_DOUBLE_EQ(ma.iip[i], mb.iip[i]);
    EXPECT_EQ(ma.busCycles, mb.busCycles);
}

TEST(Determinism, StudyScoresBitExact)
{
    StudyConfig cfg;
    cfg.lines = 2;
    cfg.enrollReps = 2;
    cfg.genuinePerLine = 4;
    cfg.impostorPerPair = 2;
    const StudyResult a = GenuineImpostorStudy(cfg, Rng(7)).run();
    const StudyResult b = GenuineImpostorStudy(cfg, Rng(7)).run();
    ASSERT_EQ(a.genuine.size(), b.genuine.size());
    for (std::size_t i = 0; i < a.genuine.size(); ++i)
        EXPECT_DOUBLE_EQ(a.genuine[i], b.genuine[i]);
    EXPECT_DOUBLE_EQ(a.roc.eer, b.roc.eer);
}

TEST(Determinism, ParallelStudyBitIdenticalToSerial)
{
    // The campaign's determinism contract: thread count must not
    // change a single bit of the result. Serial (threads = 1) runs
    // the lane bodies inline; parallel fans them out over a pool.
    StudyConfig serial_cfg;
    serial_cfg.lines = 3;
    serial_cfg.wires = 2;
    serial_cfg.enrollReps = 2;
    serial_cfg.genuinePerLine = 3;
    serial_cfg.impostorPerPair = 2;
    serial_cfg.environment.temperatureSwingHiC = 60.0;  // env rng draws
    serial_cfg.environment.vibrationStrain = 1e-3;      // schedule use
    serial_cfg.threads = 1;
    StudyConfig parallel_cfg = serial_cfg;
    parallel_cfg.threads = 4;

    const StudyResult a =
        GenuineImpostorStudy(serial_cfg, Rng(11)).run();
    const StudyResult b =
        GenuineImpostorStudy(parallel_cfg, Rng(11)).run();

    ASSERT_EQ(a.genuine.size(), b.genuine.size());
    for (std::size_t i = 0; i < a.genuine.size(); ++i)
        EXPECT_DOUBLE_EQ(a.genuine[i], b.genuine[i]) << "genuine " << i;
    ASSERT_EQ(a.impostor.size(), b.impostor.size());
    for (std::size_t i = 0; i < a.impostor.size(); ++i)
        EXPECT_DOUBLE_EQ(a.impostor[i], b.impostor[i])
            << "impostor " << i;
    EXPECT_EQ(a.totalBusCycles, b.totalBusCycles);
    EXPECT_DOUBLE_EQ(a.roc.eer, b.roc.eer);
    EXPECT_DOUBLE_EQ(a.decidability, b.decidability);
    EXPECT_DOUBLE_EQ(a.fittedEer, b.fittedEer);
}

TEST(Determinism, FaultedCampaignBitIdenticalAcrossThreads)
{
    // The fault campaign draws from three coupled stochastic layers
    // (fabrication, instrument noise, fault frames); all of them fork
    // stably per cell, so a faulted matrix must reproduce bit-for-bit
    // at any thread count.
    FaultCampaignConfig serial_cfg;
    serial_cfg.rounds = 6;
    serial_cfg.attackRound = 2;
    serial_cfg.enrollReps = 2;
    serial_cfg.threads = 1;
    FaultCampaignConfig parallel_cfg = serial_cfg;
    parallel_cfg.threads = 4;

    std::vector<FaultScenario> faults;
    faults.push_back({"none", FaultPlan{}});
    faults.push_back({"emi", FaultPlan{}.emiBurst(1, 2, 2.5e-3)});
    faults.push_back({"flip", FaultPlan{}.counterBitFlip(0, 0, 0.2)});
    const std::vector<CampaignAttack> attacks = {
        CampaignAttack::None, CampaignAttack::MagneticProbe};

    const auto a =
        FaultCampaign(serial_cfg, Rng(13)).run(faults, attacks);
    const auto b =
        FaultCampaign(parallel_cfg, Rng(13)).run(faults, attacks);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].detected, b[i].detected) << "cell " << i;
        EXPECT_EQ(a[i].detectionRound, b[i].detectionRound)
            << "cell " << i;
        EXPECT_EQ(a[i].falseAlarms, b[i].falseAlarms) << "cell " << i;
        EXPECT_EQ(a[i].suppressedAlarms, b[i].suppressedAlarms)
            << "cell " << i;
        EXPECT_EQ(a[i].unhealthyRounds, b[i].unhealthyRounds)
            << "cell " << i;
        EXPECT_EQ(a[i].retries, b[i].retries) << "cell " << i;
        EXPECT_EQ(a[i].authenticatedRounds, b[i].authenticatedRounds)
            << "cell " << i;
        EXPECT_EQ(a[i].finalState, b[i].finalState) << "cell " << i;
        EXPECT_DOUBLE_EQ(a[i].availability, b[i].availability)
            << "cell " << i;
    }
}

TEST(Determinism, StableForkIndependentOfDrawOrder)
{
    // forkStable must be a pure function of (state, tag): interleaved
    // draws or other forks on the parent change nothing.
    Rng a(123), b(123);
    Rng child_a = a.forkStable(42);
    b.forkStable(7);            // unrelated stable fork
    Rng child_b = b.forkStable(42);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(child_a.next(), child_b.next());

    // ...while distinct tags give distinct streams.
    Rng c(123);
    Rng other = c.forkStable(43);
    Rng same = c.forkStable(42);
    EXPECT_NE(other.next(), same.next());
}

TEST(Determinism, DifferentSeedsDifferentFabrication)
{
    DivotSystemConfig cfg;
    cfg.lineLength = 0.05;
    cfg.enrollReps = 2;
    DivotSystem a(cfg, Rng(1));
    DivotSystem b(cfg, Rng(2));
    bool any_diff = false;
    for (std::size_t i = 0; i < a.line().segments(); ++i) {
        if (a.line().impedanceAt(i) != b.line().impedanceAt(i))
            any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Determinism, MeasurementOrderIndependentOfOtherInstruments)
{
    // Creating and running an unrelated instrument must not perturb
    // another instrument's stream (fork isolation).
    ProcessParams params;
    ManufacturingProcess fab(params, Rng(3));
    auto z = fab.drawImpedanceProfile(0.05, 0.5e-3);
    TransmissionLine line(std::move(z), 0.5e-3, params.velocity,
                          50.0, 50.2, params.lossNeperPerMeter, "i");

    Rng master1(99);
    ITdr lone(ItdrConfig{}, master1.fork(1));
    const IipMeasurement ma = lone.measure(line);

    Rng master2(99);
    ITdr first(ItdrConfig{}, master2.fork(1));
    ITdr noisy_neighbor(ItdrConfig{}, master2.fork(2));
    noisy_neighbor.measure(line);  // interleaved activity
    const IipMeasurement mb = first.measure(line);

    ASSERT_EQ(ma.iip.size(), mb.iip.size());
    for (std::size_t i = 0; i < ma.iip.size(); ++i)
        EXPECT_DOUBLE_EQ(ma.iip[i], mb.iip[i]);
}

} // namespace
} // namespace divot
