/**
 * @file
 * Unit tests for the telemetry subsystem: registry handles, histogram
 * bucket-edge semantics, ring wraparound in the span/event buffers,
 * exact concurrent accumulation, and the disabled-is-free contract.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hh"

namespace divot {
namespace {

TEST(TelemetryRegistry, CounterHandlesShareOneCell)
{
    Registry reg;
    Counter a = reg.counter("x.count");
    Counter b = reg.counter("x.count");
    a.add(3);
    b.add(4);
    EXPECT_EQ(a.value(), 7u);
    EXPECT_EQ(reg.counterValue("x.count"), 7u);
    EXPECT_EQ(reg.counterValue("never.registered"), 0u);
}

TEST(TelemetryRegistry, DefaultConstructedHandlesAreInert)
{
    Counter c;
    Gauge g;
    HistogramMetric h;
    c.add(5);
    g.set(9);
    g.max(11);
    h.record(3);
    EXPECT_FALSE(c.live());
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.total(), 0u);
}

TEST(TelemetryRegistry, GaugeMaxIsHighWaterMark)
{
    Registry reg;
    Gauge g = reg.gauge("depth");
    g.max(4);
    g.max(2);
    EXPECT_EQ(g.value(), 4);
    g.set(1);
    EXPECT_EQ(reg.gaugeValue("depth"), 1);
}

TEST(TelemetryRegistry, HistogramBucketEdgesAreInclusive)
{
    Registry reg;
    HistogramMetric h = reg.histogram("lat", {10, 20, 40});
    // A sample equal to a bound lands in that bound's bucket; anything
    // above the last bound lands in the trailing overflow bucket.
    h.record(0);
    h.record(10);   // still bucket 0 (v <= 10)
    h.record(11);   // bucket 1
    h.record(20);   // bucket 1
    h.record(40);   // bucket 2
    h.record(41);   // overflow
    const auto snaps = reg.histograms();
    ASSERT_EQ(snaps.size(), 1u);
    const HistogramSnapshot &s = snaps[0];
    ASSERT_EQ(s.counts.size(), 4u);
    EXPECT_EQ(s.counts[0], 2u);
    EXPECT_EQ(s.counts[1], 2u);
    EXPECT_EQ(s.counts[2], 1u);
    EXPECT_EQ(s.counts[3], 1u);
    EXPECT_EQ(s.total, 6u);
    EXPECT_EQ(s.sum, 0u + 10 + 11 + 20 + 40 + 41);
}

TEST(TelemetryRegistry, ConcurrentIncrementsSumExactly)
{
    Registry reg;
    Counter c = reg.counter("hot");
    HistogramMetric h = reg.histogram("hist", {100});
    constexpr unsigned kThreads = 8;
    constexpr uint64_t kPerThread = 10000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&]() {
            for (uint64_t i = 0; i < kPerThread; ++i) {
                c.add();
                h.record(1);
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
    EXPECT_EQ(h.total(), kThreads * kPerThread);
    EXPECT_EQ(h.sum(), kThreads * kPerThread);
}

TEST(TelemetryRegistry, UnstableMetricsExcludedFromStableSnapshot)
{
    Registry reg;
    reg.counter("stable.one").add();
    reg.counter("wobbly", MetricStability::Unstable).add(9);
    EXPECT_EQ(reg.counters(false).size(), 1u);
    EXPECT_EQ(reg.counters(true).size(), 2u);
}

TEST(TelemetrySpan, RingWrapsAndCountsDrops)
{
    SpanTracer tracer(3, true);
    for (int i = 0; i < 5; ++i) {
        SpanRecord r;
        r.name = "stage";
        r.start = static_cast<double>(i);
        r.ordinal = static_cast<uint64_t>(i);
        tracer.record(std::move(r));
    }
    EXPECT_EQ(tracer.size(), 3u);
    EXPECT_EQ(tracer.opened(), 5u);
    EXPECT_EQ(tracer.closed(), 5u);
    EXPECT_EQ(tracer.dropped(), 2u);
    // The oldest two were evicted.
    const auto records = tracer.sorted();
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records.front().ordinal, 2u);
    EXPECT_EQ(records.back().ordinal, 4u);
}

TEST(TelemetrySpan, AbandonedScopeStillCloses)
{
    SpanTracer tracer(16, true);
    {
        SpanScope scope = tracer.open("orphan", "t", 1.5, 7);
        EXPECT_TRUE(scope.open());
        // Dropped without close(): destructor records a zero-length
        // span at the start stamp so opened == closed stays balanced.
    }
    EXPECT_EQ(tracer.opened(), 1u);
    EXPECT_EQ(tracer.closed(), 1u);
    const auto records = tracer.sorted();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].duration, 0.0);
    EXPECT_EQ(records[0].start, 1.5);
}

TEST(TelemetrySpan, ZeroCapacityCountsOnly)
{
    SpanTracer tracer(0, true);
    SpanScope scope = tracer.open("s", "t", 0.0);
    scope.close(1.0);
    EXPECT_EQ(tracer.opened(), 1u);
    EXPECT_EQ(tracer.closed(), 1u);
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.dropped(), 1u);
}

TEST(TelemetryEvents, ZeroCapacityCountsOnly)
{
    EventLog log(0, true);
    TelemetryEvent e;
    e.kind = "k";
    log.record(std::move(e));
    EXPECT_EQ(log.recorded(), 1u);
    EXPECT_EQ(log.dropped(), 1u);
    EXPECT_EQ(log.size(), 0u);
}

TEST(TelemetryEvents, RingWrapsAndSortsDeterministically)
{
    EventLog log(2, true);
    for (int i = 0; i < 4; ++i) {
        TelemetryEvent e;
        e.time = static_cast<double>(3 - i);  // reverse stamps
        e.ordinal = static_cast<uint64_t>(i);
        e.kind = "k";
        log.record(std::move(e));
    }
    EXPECT_EQ(log.recorded(), 4u);
    EXPECT_EQ(log.dropped(), 2u);
    const auto events = log.sorted();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_LE(events[0].time, events[1].time);
}

TEST(TelemetryFacade, DisabledIsInertEverywhere)
{
    TelemetryConfig config;
    config.enabled = false;
    Telemetry telemetry(config);
    Counter c = telemetry.registry().counter("a");
    Gauge g = telemetry.registry().gauge("g");
    HistogramMetric h = telemetry.registry().histogram("h", {1});
    c.add(42);
    g.set(7);
    h.record(3);
    EXPECT_FALSE(c.live());
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.total(), 0u);
    SpanScope scope = telemetry.tracer().open("s", "t", 0.0);
    scope.close(1.0);
    TelemetryEvent e;
    telemetry.events().record(std::move(e));
    EXPECT_EQ(telemetry.registry().counters(true).size(), 0u);
    EXPECT_EQ(telemetry.tracer().opened(), 0u);
    EXPECT_EQ(telemetry.events().recorded(), 0u);
    EXPECT_NE(telemetry.exportJson().find("\"enabled\": false"),
              std::string::npos);
}

TEST(TelemetryRegistryDeathTest, HistogramValidationIsFatal)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    Registry reg;
    EXPECT_DEATH(reg.histogram("empty", {}), "at least one bucket");
    EXPECT_DEATH(reg.histogram("unsorted", {5, 2}), "ascending");
    reg.histogram("dup", {1, 2});
    EXPECT_DEATH(reg.histogram("dup", {1, 3}),
                 "different bucket bounds");
}

TEST(TelemetryFacade, ExportJsonShape)
{
    Telemetry telemetry;
    telemetry.registry().counter("b.count").add(2);
    telemetry.registry().counter("a.count").add(1);
    telemetry.registry().gauge("g").set(-3);
    telemetry.registry().histogram("h", {1, 2}).record(2);
    SpanScope scope = telemetry.tracer().open("span", "tag", 0.5, 1);
    scope.close(0.75, 64);
    TelemetryEvent e;
    e.time = 0.25;
    e.kind = "k";
    e.tag = "t";
    e.detail = "with \"quotes\" and\nnewline";
    telemetry.events().record(std::move(e));

    const std::string json = telemetry.exportJson();
    // Keys sorted: a.count before b.count.
    EXPECT_LT(json.find("\"a.count\": 1"), json.find("\"b.count\": 2"));
    EXPECT_NE(json.find("\"g\": -3"), std::string::npos);
    EXPECT_NE(json.find("\"bounds\": [1, 2]"), std::string::npos);
    EXPECT_NE(json.find("\"cycles\": 64"), std::string::npos);
    // Escapes survive.
    EXPECT_NE(json.find("with \\\"quotes\\\" and\\nnewline"),
              std::string::npos);
    // Nothing dropped, so both record arrays are present.
    EXPECT_NE(json.find("\"records\""), std::string::npos);
    EXPECT_EQ(json.back(), '\n');

    const std::string csv = telemetry.exportCsv();
    EXPECT_NE(csv.find("metric,kind,value,sum"), std::string::npos);
    EXPECT_NE(csv.find("a.count,counter,1,"), std::string::npos);
    EXPECT_NE(csv.find("h[le=inf],"), std::string::npos);
}

TEST(TelemetryFacade, DroppedRecordsSuppressArraysOnly)
{
    TelemetryConfig config;
    config.spanCapacity = 1;
    config.eventCapacity = 1;
    Telemetry telemetry(config);
    for (int i = 0; i < 3; ++i) {
        SpanRecord r;
        r.name = "s";
        telemetry.tracer().record(std::move(r));
        TelemetryEvent e;
        e.kind = "k";
        telemetry.events().record(std::move(e));
    }
    const std::string json = telemetry.exportJson();
    // Counts stay (deterministic); the retained sets are not, so the
    // record arrays vanish from the deterministic export.
    EXPECT_NE(json.find("\"dropped\": 2"), std::string::npos);
    EXPECT_EQ(json.find("\"records\""), std::string::npos);
}

} // namespace
} // namespace divot
