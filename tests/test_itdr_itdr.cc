/**
 * @file
 * Integration tests for the full iTDR: reconstruction convergence to
 * the physics ground truth, bin-grid stability, cost accounting, and
 * the load-echo timing the memory-bus design depends on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "itdr/budget.hh"
#include "itdr/itdr.hh"
#include "signal/noise.hh"
#include "txline/manufacturing.hh"

namespace divot {
namespace {

TransmissionLine
testLine(uint64_t seed = 1, double length = 0.1)
{
    ProcessParams params;
    ManufacturingProcess fab(params, Rng(seed));
    auto z = fab.drawImpedanceProfile(length, 0.5e-3);
    return TransmissionLine(std::move(z), 0.5e-3, params.velocity,
                            50.0, 50.4, params.lossNeperPerMeter, "t");
}

TEST(ITdr, MeasurementConvergesToIdealIip)
{
    ItdrConfig cfg;
    cfg.trialsPerPhase = 440;  // heavy averaging for convergence
    ITdr itdr(cfg, Rng(3));
    const auto line = testLine();
    const Waveform ideal = itdr.idealIip(line);
    const IipMeasurement m = itdr.measure(line);
    ASSERT_EQ(m.iip.size(), ideal.size());

    // RMS reconstruction error well below the per-trial noise sigma.
    double err = 0.0;
    for (std::size_t i = 0; i < ideal.size(); ++i)
        err += (m.iip[i] - ideal[i]) * (m.iip[i] - ideal[i]);
    err = std::sqrt(err / static_cast<double>(ideal.size()));
    EXPECT_LT(err, cfg.comparator.noiseSigma);

    // And the shape correlates strongly with the truth.
    EXPECT_GT(normalizedInnerProduct(m.iip, ideal), 0.97);
}

TEST(ITdr, MoreTrialsLessNoise)
{
    const auto line = testLine();
    auto rms_err = [&](unsigned trials, uint64_t seed) {
        ItdrConfig cfg;
        cfg.trialsPerPhase = trials;
        ITdr itdr(cfg, Rng(seed));
        const Waveform ideal = itdr.idealIip(line);
        const IipMeasurement m = itdr.measure(line);
        double err = 0.0;
        for (std::size_t i = 0; i < ideal.size(); ++i)
            err += (m.iip[i] - ideal[i]) * (m.iip[i] - ideal[i]);
        return std::sqrt(err / static_cast<double>(ideal.size()));
    };
    EXPECT_GT(rms_err(22, 5), rms_err(352, 6));
}

TEST(ITdr, BinsFrozenAcrossMeasurements)
{
    ItdrConfig cfg;
    ITdr itdr(cfg, Rng(7));
    const auto a = itdr.measure(testLine(1));
    const auto b = itdr.measure(testLine(2));
    EXPECT_EQ(a.iip.size(), b.iip.size());
    EXPECT_DOUBLE_EQ(a.iip.dt(), b.iip.dt());
}

TEST(ITdr, ClockLaneCycleAccounting)
{
    ItdrConfig cfg;
    cfg.trialsPerPhase = 22;
    ITdr itdr(cfg, Rng(9));
    const auto line = testLine();
    const IipMeasurement m = itdr.measure(line);
    // Clock lane: one trigger per cycle.
    EXPECT_EQ(m.busCycles, m.triggers);
    EXPECT_EQ(m.triggers,
              static_cast<uint64_t>(itdr.phaseBins()) *
                  itdr.trialsPerPhase());
    EXPECT_NEAR(m.duration,
                static_cast<double>(m.busCycles) / 156.25e6, 1e-12);
}

TEST(ITdr, DataLaneCostsMoreCycles)
{
    ItdrConfig cfg;
    cfg.trialsPerPhase = 22;
    cfg.triggerMode = TriggerMode::DataLane;
    ITdr itdr(cfg, Rng(11));
    const IipMeasurement m = itdr.measure(testLine());
    // Triggers arrive on ~1/4 of the cycles.
    EXPECT_GT(m.busCycles, 3 * m.triggers);
    EXPECT_LT(m.busCycles, 6 * m.triggers);
}

TEST(ITdr, TrialsRoundedUpToLevelMultiple)
{
    ItdrConfig cfg;
    cfg.trialsPerPhase = 100;  // p = 11 => round to 110
    ITdr itdr(cfg, Rng(13));
    EXPECT_EQ(itdr.trialsPerPhase() % cfg.pdm.p, 0u);
    EXPECT_GE(itdr.trialsPerPhase(), 100u);
}

TEST(ITdr, BatchedStrobesMatchScalarPath)
{
    // The batch path consumes the same comparator draws as the scalar
    // loop; the only difference is that the Vernier reference levels
    // are evaluated once per period instead of once per trial, which
    // is mathematically identical (and numerically equal to within
    // floating-point noise on the triangle-phase reduction).
    const auto line = testLine();
    ItdrConfig batch_cfg;
    batch_cfg.trialsPerPhase = 170;
    ItdrConfig scalar_cfg = batch_cfg;
    scalar_cfg.batchedStrobes = false;
    ITdr batch(batch_cfg, Rng(23));
    ITdr scalar(scalar_cfg, Rng(23));
    const IipMeasurement mb = batch.measure(line);
    const IipMeasurement ms = scalar.measure(line);
    ASSERT_EQ(mb.iip.size(), ms.iip.size());
    EXPECT_EQ(mb.busCycles, ms.busCycles);
    EXPECT_EQ(mb.triggers, ms.triggers);
    // A 1-ulp reference difference can flip at most the rare strobe
    // that lands exactly on the noise threshold; allow a fraction of
    // one trial's worth of probability per bin.
    const double tol = 3.0 * batch_cfg.comparator.noiseSigma /
        static_cast<double>(batch_cfg.trialsPerPhase);
    for (std::size_t i = 0; i < mb.iip.size(); ++i)
        EXPECT_NEAR(mb.iip[i], ms.iip[i], tol) << "bin " << i;
}

TEST(ITdr, BatchGateFallsBackForDataLaneAndJitter)
{
    // Configurations the batch path cannot serve must still measure
    // correctly through the scalar loop.
    const auto line = testLine();
    ItdrConfig jitter_cfg;
    jitter_cfg.trialsPerPhase = 44;
    jitter_cfg.pll.jitterRms = 2e-12;
    ITdr jitter(jitter_cfg, Rng(27));
    const IipMeasurement mj = jitter.measure(line);
    EXPECT_EQ(mj.iip.size(), jitter.phaseBins());

    ItdrConfig data_cfg;
    data_cfg.trialsPerPhase = 44;
    data_cfg.triggerMode = TriggerMode::DataLane;
    ITdr data(data_cfg, Rng(29));
    const IipMeasurement md = data.measure(line);
    EXPECT_GT(md.busCycles, md.triggers);
}

TEST(ITdr, EffectiveTrialsSurfacedAndMatchBudget)
{
    ItdrConfig cfg;
    cfg.trialsPerPhase = 100;  // p = 17 => rounds to 102
    ITdr itdr(cfg, Rng(31));
    const auto line = testLine();
    const IipMeasurement m = itdr.measure(line);
    EXPECT_EQ(m.trialsPerBin, itdr.trialsPerPhase());
    EXPECT_EQ(m.trialsPerBin % cfg.pdm.p, 0u);
    const MeasurementBudget budget =
        predictBudget(cfg, line.roundTripDelay());
    EXPECT_EQ(m.trialsPerBin, budget.trialsPerBin);
    EXPECT_EQ(m.triggers,
              static_cast<uint64_t>(itdr.phaseBins()) * m.trialsPerBin);
}

TEST(ITdr, BinomialStrobeModelMatchesSampledStatistics)
{
    // The analytic engine samples the sufficient statistic instead of
    // the waveform; per-bin reconstruction means over repeated
    // measurements must agree with the sampled engine within
    // two-sample CI bounds on a known line, and the deterministic
    // accounting must be identical.
    const auto line = testLine(41);
    ItdrConfig sampled_cfg;
    sampled_cfg.trialsPerPhase = 170;
    ItdrConfig binomial_cfg = sampled_cfg;
    binomial_cfg.strobeModel = StrobeModel::Binomial;
    ITdr sampled(sampled_cfg, Rng(51));
    ITdr binomial(binomial_cfg, Rng(52));

    const int reps = 48;
    std::vector<double> mean_s, mean_b, m2_s, m2_b;
    for (int r = 0; r < reps; ++r) {
        const IipMeasurement ms = sampled.measure(line);
        const IipMeasurement mb = binomial.measure(line);
        ASSERT_EQ(ms.iip.size(), mb.iip.size());
        // Cost accounting and health screens are model-independent.
        ASSERT_EQ(ms.busCycles, mb.busCycles);
        ASSERT_EQ(ms.triggers, mb.triggers);
        ASSERT_EQ(ms.trialsPerBin, mb.trialsPerBin);
        ASSERT_EQ(ms.health.ok, mb.health.ok);
        ASSERT_EQ(ms.health.budgetOverrun, mb.health.budgetOverrun);
        ASSERT_EQ(ms.health.nonFiniteBins, mb.health.nonFiniteBins);
        ASSERT_NEAR(ms.health.saturatedBinFraction,
                    mb.health.saturatedBinFraction, 0.05);
        if (mean_s.empty()) {
            mean_s.assign(ms.iip.size(), 0.0);
            mean_b.assign(ms.iip.size(), 0.0);
            m2_s.assign(ms.iip.size(), 0.0);
            m2_b.assign(ms.iip.size(), 0.0);
        }
        for (std::size_t i = 0; i < ms.iip.size(); ++i) {
            mean_s[i] += ms.iip[i];
            mean_b[i] += mb.iip[i];
            m2_s[i] += ms.iip[i] * ms.iip[i];
            m2_b[i] += mb.iip[i] * mb.iip[i];
        }
    }
    const double n = static_cast<double>(reps);
    const double sigma = sampled_cfg.comparator.noiseSigma;
    const double trials =
        static_cast<double>(sampled.trialsPerPhase());
    for (std::size_t i = 0; i < mean_s.size(); ++i) {
        const double mu_s = mean_s[i] / n;
        const double mu_b = mean_b[i] / n;
        const double var_s = std::max(m2_s[i] / n - mu_s * mu_s, 0.0);
        const double var_b = std::max(m2_b[i] / n - mu_b * mu_b, 0.0);
        // 5-sigma two-sample bound on the difference of means, with a
        // 3*sigma/sqrt(trials) floor (one trial's worth of APC
        // resolution) so zero-variance saturated bins don't demand
        // exact equality.
        const double tol = 5.0 * std::sqrt((var_s + var_b) / n) +
            3.0 * sigma / std::sqrt(trials * n);
        EXPECT_NEAR(mu_s, mu_b, tol) << "bin " << i;
    }
}

TEST(ITdr, BinomialModelFallsBackWhenIneligible)
{
    // Jitter breaks the loop-invariant-signal premise: the analytic
    // request must degrade to the sampled scalar path, not crash or
    // mis-measure.
    const auto line = testLine();
    ItdrConfig cfg;
    cfg.trialsPerPhase = 44;
    cfg.strobeModel = StrobeModel::Binomial;
    cfg.pll.jitterRms = 2e-12;
    ITdr itdr(cfg, Rng(53));
    const IipMeasurement m = itdr.measure(line);
    EXPECT_EQ(m.iip.size(), itdr.phaseBins());
    EXPECT_EQ(m.triggers,
              static_cast<uint64_t>(itdr.phaseBins()) *
                  itdr.trialsPerPhase());

    // Same for an attached extra noise source at measure() time.
    ItdrConfig cfg2;
    cfg2.trialsPerPhase = 44;
    cfg2.strobeModel = StrobeModel::Binomial;
    ITdr itdr2(cfg2, Rng(54));
    GaussianNoise extra(0.2e-3, Rng(55));
    const IipMeasurement m2 = itdr2.measure(line, &extra);
    EXPECT_EQ(m2.iip.size(), itdr2.phaseBins());
}

TEST(ITdr, BinomialModelConvergesToIdealIip)
{
    ItdrConfig cfg;
    cfg.trialsPerPhase = 440;
    cfg.strobeModel = StrobeModel::Binomial;
    ITdr itdr(cfg, Rng(57));
    const auto line = testLine();
    const Waveform ideal = itdr.idealIip(line);
    const IipMeasurement m = itdr.measure(line);
    ASSERT_EQ(m.iip.size(), ideal.size());
    double err = 0.0;
    for (std::size_t i = 0; i < ideal.size(); ++i)
        err += (m.iip[i] - ideal[i]) * (m.iip[i] - ideal[i]);
    err = std::sqrt(err / static_cast<double>(ideal.size()));
    EXPECT_LT(err, cfg.comparator.noiseSigma);
    EXPECT_GT(normalizedInnerProduct(m.iip, ideal), 0.97);
}

TEST(ITdr, LoadEchoVisibleAtRoundTripTime)
{
    // A strongly mismatched load must show up at the round-trip time
    // in the reconstruction — the feature Fig. 9(b) rides on.
    ItdrConfig cfg;
    cfg.trialsPerPhase = 220;
    ITdr itdr(cfg, Rng(15));
    auto line = testLine(21, 0.1);
    line.setLoadImpedance(70.0);
    const IipMeasurement m = itdr.measure(line);
    const std::size_t peak = m.iip.peakIndex();
    const double t_peak = m.iip.timeAt(peak);
    const double rt = line.roundTripDelay();
    EXPECT_NEAR(t_peak, rt + 1.5 * itdr.edge().duration(), 0.15 * rt);
}

TEST(ITdr, IdealIipMatchesCleanTraceSamples)
{
    ItdrConfig cfg;
    ITdr itdr(cfg, Rng(17));
    const auto line = testLine();
    const Waveform ideal = itdr.idealIip(line);
    const Waveform trace = itdr.cleanDetectorTrace(line);
    for (std::size_t i = 0; i < ideal.size(); i += 37)
        EXPECT_NEAR(ideal[i], trace.valueAt(ideal.timeAt(i)), 1e-12);
}

TEST(ITdr, LatticeBackendAgreesWithBorn)
{
    ItdrConfig born_cfg;
    ItdrConfig lat_cfg;
    lat_cfg.model = ReflectionModel::Lattice;
    ITdr born(born_cfg, Rng(19)), lattice(lat_cfg, Rng(19));
    const auto line = testLine(5);
    const Waveform a = born.idealIip(line);
    const Waveform b = lattice.idealIip(line);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_GT(normalizedInnerProduct(a, b), 0.99);
}

TEST(ITdr, ZeroTrialsRejected)
{
    ItdrConfig bad;
    bad.trialsPerPhase = 0;
    EXPECT_DEATH(ITdr(bad, Rng(21)), "trialsPerPhase");
}

} // namespace
} // namespace divot
