/**
 * @file
 * Integration tests for the full iTDR: reconstruction convergence to
 * the physics ground truth, bin-grid stability, cost accounting, and
 * the load-echo timing the memory-bus design depends on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "itdr/budget.hh"
#include "itdr/itdr.hh"
#include "txline/manufacturing.hh"

namespace divot {
namespace {

TransmissionLine
testLine(uint64_t seed = 1, double length = 0.1)
{
    ProcessParams params;
    ManufacturingProcess fab(params, Rng(seed));
    auto z = fab.drawImpedanceProfile(length, 0.5e-3);
    return TransmissionLine(std::move(z), 0.5e-3, params.velocity,
                            50.0, 50.4, params.lossNeperPerMeter, "t");
}

TEST(ITdr, MeasurementConvergesToIdealIip)
{
    ItdrConfig cfg;
    cfg.trialsPerPhase = 440;  // heavy averaging for convergence
    ITdr itdr(cfg, Rng(3));
    const auto line = testLine();
    const Waveform ideal = itdr.idealIip(line);
    const IipMeasurement m = itdr.measure(line);
    ASSERT_EQ(m.iip.size(), ideal.size());

    // RMS reconstruction error well below the per-trial noise sigma.
    double err = 0.0;
    for (std::size_t i = 0; i < ideal.size(); ++i)
        err += (m.iip[i] - ideal[i]) * (m.iip[i] - ideal[i]);
    err = std::sqrt(err / static_cast<double>(ideal.size()));
    EXPECT_LT(err, cfg.comparator.noiseSigma);

    // And the shape correlates strongly with the truth.
    EXPECT_GT(normalizedInnerProduct(m.iip, ideal), 0.97);
}

TEST(ITdr, MoreTrialsLessNoise)
{
    const auto line = testLine();
    auto rms_err = [&](unsigned trials, uint64_t seed) {
        ItdrConfig cfg;
        cfg.trialsPerPhase = trials;
        ITdr itdr(cfg, Rng(seed));
        const Waveform ideal = itdr.idealIip(line);
        const IipMeasurement m = itdr.measure(line);
        double err = 0.0;
        for (std::size_t i = 0; i < ideal.size(); ++i)
            err += (m.iip[i] - ideal[i]) * (m.iip[i] - ideal[i]);
        return std::sqrt(err / static_cast<double>(ideal.size()));
    };
    EXPECT_GT(rms_err(22, 5), rms_err(352, 6));
}

TEST(ITdr, BinsFrozenAcrossMeasurements)
{
    ItdrConfig cfg;
    ITdr itdr(cfg, Rng(7));
    const auto a = itdr.measure(testLine(1));
    const auto b = itdr.measure(testLine(2));
    EXPECT_EQ(a.iip.size(), b.iip.size());
    EXPECT_DOUBLE_EQ(a.iip.dt(), b.iip.dt());
}

TEST(ITdr, ClockLaneCycleAccounting)
{
    ItdrConfig cfg;
    cfg.trialsPerPhase = 22;
    ITdr itdr(cfg, Rng(9));
    const auto line = testLine();
    const IipMeasurement m = itdr.measure(line);
    // Clock lane: one trigger per cycle.
    EXPECT_EQ(m.busCycles, m.triggers);
    EXPECT_EQ(m.triggers,
              static_cast<uint64_t>(itdr.phaseBins()) *
                  itdr.trialsPerPhase());
    EXPECT_NEAR(m.duration,
                static_cast<double>(m.busCycles) / 156.25e6, 1e-12);
}

TEST(ITdr, DataLaneCostsMoreCycles)
{
    ItdrConfig cfg;
    cfg.trialsPerPhase = 22;
    cfg.triggerMode = TriggerMode::DataLane;
    ITdr itdr(cfg, Rng(11));
    const IipMeasurement m = itdr.measure(testLine());
    // Triggers arrive on ~1/4 of the cycles.
    EXPECT_GT(m.busCycles, 3 * m.triggers);
    EXPECT_LT(m.busCycles, 6 * m.triggers);
}

TEST(ITdr, TrialsRoundedUpToLevelMultiple)
{
    ItdrConfig cfg;
    cfg.trialsPerPhase = 100;  // p = 11 => round to 110
    ITdr itdr(cfg, Rng(13));
    EXPECT_EQ(itdr.trialsPerPhase() % cfg.pdm.p, 0u);
    EXPECT_GE(itdr.trialsPerPhase(), 100u);
}

TEST(ITdr, BatchedStrobesMatchScalarPath)
{
    // The batch path consumes the same comparator draws as the scalar
    // loop; the only difference is that the Vernier reference levels
    // are evaluated once per period instead of once per trial, which
    // is mathematically identical (and numerically equal to within
    // floating-point noise on the triangle-phase reduction).
    const auto line = testLine();
    ItdrConfig batch_cfg;
    batch_cfg.trialsPerPhase = 170;
    ItdrConfig scalar_cfg = batch_cfg;
    scalar_cfg.batchedStrobes = false;
    ITdr batch(batch_cfg, Rng(23));
    ITdr scalar(scalar_cfg, Rng(23));
    const IipMeasurement mb = batch.measure(line);
    const IipMeasurement ms = scalar.measure(line);
    ASSERT_EQ(mb.iip.size(), ms.iip.size());
    EXPECT_EQ(mb.busCycles, ms.busCycles);
    EXPECT_EQ(mb.triggers, ms.triggers);
    // A 1-ulp reference difference can flip at most the rare strobe
    // that lands exactly on the noise threshold; allow a fraction of
    // one trial's worth of probability per bin.
    const double tol = 3.0 * batch_cfg.comparator.noiseSigma /
        static_cast<double>(batch_cfg.trialsPerPhase);
    for (std::size_t i = 0; i < mb.iip.size(); ++i)
        EXPECT_NEAR(mb.iip[i], ms.iip[i], tol) << "bin " << i;
}

TEST(ITdr, BatchGateFallsBackForDataLaneAndJitter)
{
    // Configurations the batch path cannot serve must still measure
    // correctly through the scalar loop.
    const auto line = testLine();
    ItdrConfig jitter_cfg;
    jitter_cfg.trialsPerPhase = 44;
    jitter_cfg.pll.jitterRms = 2e-12;
    ITdr jitter(jitter_cfg, Rng(27));
    const IipMeasurement mj = jitter.measure(line);
    EXPECT_EQ(mj.iip.size(), jitter.phaseBins());

    ItdrConfig data_cfg;
    data_cfg.trialsPerPhase = 44;
    data_cfg.triggerMode = TriggerMode::DataLane;
    ITdr data(data_cfg, Rng(29));
    const IipMeasurement md = data.measure(line);
    EXPECT_GT(md.busCycles, md.triggers);
}

TEST(ITdr, EffectiveTrialsSurfacedAndMatchBudget)
{
    ItdrConfig cfg;
    cfg.trialsPerPhase = 100;  // p = 17 => rounds to 102
    ITdr itdr(cfg, Rng(31));
    const auto line = testLine();
    const IipMeasurement m = itdr.measure(line);
    EXPECT_EQ(m.trialsPerBin, itdr.trialsPerPhase());
    EXPECT_EQ(m.trialsPerBin % cfg.pdm.p, 0u);
    const MeasurementBudget budget =
        predictBudget(cfg, line.roundTripDelay());
    EXPECT_EQ(m.trialsPerBin, budget.trialsPerBin);
    EXPECT_EQ(m.triggers,
              static_cast<uint64_t>(itdr.phaseBins()) * m.trialsPerBin);
}

TEST(ITdr, LoadEchoVisibleAtRoundTripTime)
{
    // A strongly mismatched load must show up at the round-trip time
    // in the reconstruction — the feature Fig. 9(b) rides on.
    ItdrConfig cfg;
    cfg.trialsPerPhase = 220;
    ITdr itdr(cfg, Rng(15));
    auto line = testLine(21, 0.1);
    line.setLoadImpedance(70.0);
    const IipMeasurement m = itdr.measure(line);
    const std::size_t peak = m.iip.peakIndex();
    const double t_peak = m.iip.timeAt(peak);
    const double rt = line.roundTripDelay();
    EXPECT_NEAR(t_peak, rt + 1.5 * itdr.edge().duration(), 0.15 * rt);
}

TEST(ITdr, IdealIipMatchesCleanTraceSamples)
{
    ItdrConfig cfg;
    ITdr itdr(cfg, Rng(17));
    const auto line = testLine();
    const Waveform ideal = itdr.idealIip(line);
    const Waveform trace = itdr.cleanDetectorTrace(line);
    for (std::size_t i = 0; i < ideal.size(); i += 37)
        EXPECT_NEAR(ideal[i], trace.valueAt(ideal.timeAt(i)), 1e-12);
}

TEST(ITdr, LatticeBackendAgreesWithBorn)
{
    ItdrConfig born_cfg;
    ItdrConfig lat_cfg;
    lat_cfg.model = ReflectionModel::Lattice;
    ITdr born(born_cfg, Rng(19)), lattice(lat_cfg, Rng(19));
    const auto line = testLine(5);
    const Waveform a = born.idealIip(line);
    const Waveform b = lattice.idealIip(line);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_GT(normalizedInnerProduct(a, b), 0.99);
}

TEST(ITdr, ZeroTrialsRejected)
{
    ItdrConfig bad;
    bad.trialsPerPhase = 0;
    EXPECT_DEATH(ITdr(bad, Rng(21)), "trialsPerPhase");
}

} // namespace
} // namespace divot
