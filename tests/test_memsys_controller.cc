/**
 * @file
 * Tests for the memory controller: scheduling, completion, FR-FCFS
 * row-hit preference, refresh, and the CPU-side DIVOT stall.
 */

#include <gtest/gtest.h>

#include <vector>

#include "memsys/controller.hh"

namespace divot {
namespace {

struct Harness
{
    Sdram sdram{SdramTiming{}, SdramGeometry{}};
    MemoryController ctrl{sdram};
    std::vector<MemCompletion> done;

    Harness()
    {
        ctrl.onCompletion(
            [this](const MemCompletion &c) { done.push_back(c); });
    }

    void
    runUntilIdle(uint64_t &cycle, uint64_t limit = 100000)
    {
        const uint64_t end = cycle + limit;
        while (!ctrl.idle() && cycle < end) {
            ctrl.tick(cycle);
            ++cycle;
        }
    }
};

MemRequest
readReq(uint64_t id, uint64_t addr, uint64_t cycle = 0)
{
    MemRequest r;
    r.id = id;
    r.address = addr;
    r.arrivalCycle = cycle;
    return r;
}

TEST(Controller, SingleReadCompletes)
{
    Harness h;
    ASSERT_TRUE(h.ctrl.enqueue(readReq(1, 0x100)));
    uint64_t cycle = 0;
    h.runUntilIdle(cycle);
    ASSERT_EQ(h.done.size(), 1u);
    EXPECT_EQ(h.done[0].request.id, 1u);
    EXPECT_FALSE(h.done[0].rowHit);  // cold bank: miss
    EXPECT_EQ(h.ctrl.stats().reads, 1u);
    EXPECT_EQ(h.ctrl.stats().rowMisses, 1u);
}

TEST(Controller, WriteThenReadReturnsData)
{
    Harness h;
    MemRequest w;
    w.id = 1;
    w.isWrite = true;
    w.address = 0x42;
    w.data = 0xabcdef;
    ASSERT_TRUE(h.ctrl.enqueue(w));
    uint64_t cycle = 0;
    h.runUntilIdle(cycle);
    ASSERT_TRUE(h.ctrl.enqueue(readReq(2, 0x42, cycle)));
    h.runUntilIdle(cycle);
    ASSERT_EQ(h.done.size(), 2u);
    EXPECT_EQ(h.done[1].data, 0xabcdefu);
}

TEST(Controller, SequentialStreamMostlyRowHits)
{
    Harness h;
    uint64_t cycle = 0;
    for (uint64_t i = 0; i < 32; ++i)
        ASSERT_TRUE(h.ctrl.enqueue(readReq(i, i)));
    h.runUntilIdle(cycle);
    EXPECT_EQ(h.done.size(), 32u);
    EXPECT_GT(h.ctrl.stats().rowHitRate(), 0.9);
}

TEST(Controller, FrFcfsPrefersRowHit)
{
    Harness h;
    uint64_t cycle = 0;
    // Open a row via a first request.
    ASSERT_TRUE(h.ctrl.enqueue(readReq(1, 0)));
    h.runUntilIdle(cycle);
    // Now queue a row-miss (same bank, other row) first, then a
    // row-hit to the open row.
    const auto &g = h.sdram.geometry();
    const uint64_t other_row = static_cast<uint64_t>(g.colsPerRow) *
        g.banks;  // row 1, bank 0
    ASSERT_TRUE(h.ctrl.enqueue(readReq(2, other_row, cycle)));
    ASSERT_TRUE(h.ctrl.enqueue(readReq(3, 1, cycle)));
    h.runUntilIdle(cycle);
    ASSERT_EQ(h.done.size(), 3u);
    // The row hit (id 3) completes before the older row miss (id 2).
    EXPECT_EQ(h.done[1].request.id, 3u);
    EXPECT_TRUE(h.done[1].rowHit);
    EXPECT_EQ(h.done[2].request.id, 2u);
}

TEST(Controller, QueueCapacityRespected)
{
    Sdram dev(SdramTiming{}, SdramGeometry{});
    MemoryController small(dev, 2);
    EXPECT_TRUE(small.enqueue(readReq(1, 0)));
    EXPECT_TRUE(small.enqueue(readReq(2, 1)));
    EXPECT_FALSE(small.enqueue(readReq(3, 2)));
    EXPECT_EQ(small.queueDepth(), 2u);
}

TEST(Controller, RefreshIssuedPeriodically)
{
    Harness h;
    uint64_t cycle = 0;
    const uint64_t horizon = 3 * SdramTiming{}.tREFI + 100;
    while (cycle < horizon) {
        h.ctrl.tick(cycle);
        ++cycle;
    }
    EXPECT_GE(h.ctrl.stats().refreshes, 2u);
}

TEST(Controller, UntrustedBusStallsTraffic)
{
    Harness h;
    h.ctrl.setBusTrusted(false);
    ASSERT_TRUE(h.ctrl.enqueue(readReq(1, 0)));
    uint64_t cycle = 0;
    for (; cycle < 2000; ++cycle)
        h.ctrl.tick(cycle);
    // Nothing completed; stall cycles recorded.
    EXPECT_TRUE(h.done.empty());
    EXPECT_GT(h.ctrl.stats().stalledCycles, 1000u);
    // Re-trusting releases the traffic.
    h.ctrl.setBusTrusted(true);
    h.runUntilIdle(cycle);
    EXPECT_EQ(h.done.size(), 1u);
}

TEST(Controller, DeviceGateCountsRejections)
{
    Harness h;
    uint64_t cycle = 0;
    // Warm the row up.
    ASSERT_TRUE(h.ctrl.enqueue(readReq(1, 0)));
    h.runUntilIdle(cycle);
    // Block the device (memory-side reaction); controller keeps
    // trusting the bus and hits the gate.
    h.sdram.setAccessBlocked(true);
    ASSERT_TRUE(h.ctrl.enqueue(readReq(2, 1, cycle)));
    const uint64_t start = cycle;
    for (; cycle < start + 500; ++cycle)
        h.ctrl.tick(cycle);
    EXPECT_EQ(h.done.size(), 1u);  // only the first request
    EXPECT_GT(h.ctrl.stats().gateRejections, 0u);
    EXPECT_GT(h.sdram.gateRejections(), 0u);
}

TEST(Controller, BoundedStallFailsQueuedRequests)
{
    Harness h;
    h.ctrl.setStallBound(256);
    EXPECT_EQ(h.ctrl.stallBound(), 256u);
    h.ctrl.setBusTrusted(false);
    ASSERT_TRUE(h.ctrl.enqueue(readReq(1, 0)));
    ASSERT_TRUE(h.ctrl.enqueue(readReq(2, 64)));
    uint64_t cycle = 0;
    for (; cycle < 2000 && h.done.size() < 2; ++cycle)
        h.ctrl.tick(cycle);
    // Instead of deadlocking, both requests came back failed once the
    // distrust outlived the bound.
    ASSERT_EQ(h.done.size(), 2u);
    EXPECT_TRUE(h.done[0].failed);
    EXPECT_TRUE(h.done[1].failed);
    EXPECT_EQ(h.ctrl.stats().failedRequests, 2u);
    EXPECT_EQ(h.ctrl.stats().reads, 0u);
    EXPECT_TRUE(h.ctrl.idle());

    // Trust restored: new traffic flows and completes normally.
    h.ctrl.setBusTrusted(true);
    ASSERT_TRUE(h.ctrl.enqueue(readReq(3, 128, cycle)));
    h.runUntilIdle(cycle);
    ASSERT_EQ(h.done.size(), 3u);
    EXPECT_FALSE(h.done[2].failed);
}

TEST(Controller, StallBoundResetsOnTrustedCycles)
{
    Harness h;
    h.ctrl.setStallBound(300);
    ASSERT_TRUE(h.ctrl.enqueue(readReq(1, 0)));
    uint64_t cycle = 0;
    // Alternate distrust/trust in stretches shorter than the bound:
    // the streak resets each time and nothing is failed.
    for (int phase = 0; phase < 4; ++phase) {
        h.ctrl.setBusTrusted(phase % 2 == 1);
        const uint64_t end = cycle + 200;
        for (; cycle < end && h.done.empty(); ++cycle)
            h.ctrl.tick(cycle);
    }
    h.ctrl.setBusTrusted(true);
    h.runUntilIdle(cycle);
    ASSERT_EQ(h.done.size(), 1u);
    EXPECT_FALSE(h.done[0].failed);
    EXPECT_EQ(h.ctrl.stats().failedRequests, 0u);
}

TEST(Controller, UnboundedStallByDefault)
{
    Harness h;
    EXPECT_EQ(h.ctrl.stallBound(), 0u);
    h.ctrl.setBusTrusted(false);
    ASSERT_TRUE(h.ctrl.enqueue(readReq(1, 0)));
    uint64_t cycle = 0;
    for (; cycle < 5000; ++cycle)
        h.ctrl.tick(cycle);
    // Legacy behavior: waits forever, never fails the request.
    EXPECT_TRUE(h.done.empty());
    EXPECT_EQ(h.ctrl.stats().failedRequests, 0u);
}

TEST(Controller, LatencyStatsAccumulate)
{
    Harness h;
    uint64_t cycle = 0;
    for (uint64_t i = 0; i < 8; ++i)
        ASSERT_TRUE(h.ctrl.enqueue(readReq(i, i * 4096)));
    h.runUntilIdle(cycle);
    EXPECT_EQ(h.ctrl.stats().latency.count(), 8u);
    EXPECT_GT(h.ctrl.stats().latency.mean(),
              static_cast<double>(SdramTiming{}.tCL));
}

TEST(Controller, ZeroCapacityFatal)
{
    Sdram dev(SdramTiming{}, SdramGeometry{});
    EXPECT_DEATH(MemoryController(dev, 0), "capacity");
}

} // namespace
} // namespace divot
