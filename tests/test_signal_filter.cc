/**
 * @file
 * Tests for DSP helpers: convolution, moving average, RC low-pass,
 * differentiation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "signal/filter.hh"

namespace divot {
namespace {

TEST(Convolve, ImpulseIsIdentity)
{
    const double dt = 1e-9;
    Waveform x(dt, {1.0, 2.0, 3.0});
    // Discretized Dirac: area 1 => height 1/dt.
    Waveform delta(dt, {1.0 / dt});
    const Waveform y = convolve(x, delta);
    ASSERT_EQ(y.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(y[i], x[i], 1e-12);
}

TEST(Convolve, OutputLengthAndCommutativity)
{
    const double dt = 1.0;
    Waveform a(dt, {1.0, 1.0});
    Waveform b(dt, {1.0, 2.0, 3.0});
    const Waveform ab = convolve(a, b);
    const Waveform ba = convolve(b, a);
    ASSERT_EQ(ab.size(), 4u);
    ASSERT_EQ(ba.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(ab[i], ba[i], 1e-12);
}

TEST(Convolve, MismatchedRatesPanic)
{
    Waveform a(1.0, {1.0});
    Waveform b(2.0, {1.0});
    EXPECT_DEATH(convolve(a, b), "dt mismatch");
}

TEST(MovingAverage, ConstantIsFixedPoint)
{
    Waveform x(1.0, std::vector<double>(20, 7.0));
    const Waveform y = movingAverage(x, 5);
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(y[i], 7.0, 1e-12);
}

TEST(MovingAverage, SmoothsImpulse)
{
    std::vector<double> s(11, 0.0);
    s[5] = 1.0;
    Waveform x(1.0, std::move(s));
    const Waveform y = movingAverage(x, 3);
    EXPECT_NEAR(y[4], 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(y[5], 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(y[6], 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(y[3], 0.0, 1e-12);
}

TEST(MovingAverage, EvenWindowRejected)
{
    Waveform x(1.0, {1.0, 2.0, 3.0});
    EXPECT_DEATH(movingAverage(x, 2), "odd");
    EXPECT_DEATH(movingAverage(x, 0), "odd");
}

TEST(RcLowpass, DcGainIsUnity)
{
    Waveform x(1e-9, std::vector<double>(2000, 1.0));
    const Waveform y = rcLowpass(x, 20e-9);
    EXPECT_NEAR(y[y.size() - 1], 1.0, 1e-6);
}

TEST(RcLowpass, StepReachesTauFractionAtTau)
{
    // Step from 0: settle to 1 - 1/e after one time constant.
    std::vector<double> s(5000, 1.0);
    s[0] = 0.0;
    Waveform x(1e-10, std::move(s));
    const double tau = 50e-10;
    const Waveform y = rcLowpass(x, tau);
    const std::size_t i_tau = static_cast<std::size_t>(tau / 1e-10);
    EXPECT_NEAR(y[i_tau], 1.0 - std::exp(-1.0), 0.02);
}

TEST(RcLowpass, BadTauRejected)
{
    Waveform x(1.0, {1.0});
    EXPECT_DEATH(rcLowpass(x, 0.0), "tau");
}

TEST(Differentiate, RampGivesConstantSlope)
{
    std::vector<double> s(10);
    for (std::size_t i = 0; i < 10; ++i)
        s[i] = 3.0 * static_cast<double>(i);
    Waveform x(2.0, std::move(s));
    const Waveform d = differentiate(x);
    ASSERT_EQ(d.size(), 9u);
    for (std::size_t i = 0; i < d.size(); ++i)
        EXPECT_NEAR(d[i], 1.5, 1e-12);
}

TEST(Differentiate, ShortInputGivesEmpty)
{
    Waveform x(1.0, {5.0});
    EXPECT_TRUE(differentiate(x).empty());
}

} // namespace
} // namespace divot
