/**
 * @file
 * Physics tests for the traveling-wave lattice simulator and its
 * first-order Born approximation: matched-line silence, echo timing,
 * echo polarity, energy conservation, and Born-vs-lattice agreement
 * on weak (PCB-like) inhomogeneity.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "txline/born.hh"
#include "txline/lattice.hh"
#include "txline/manufacturing.hh"

namespace divot {
namespace {

constexpr double kV = 1.5e8;
constexpr double kSeg = 0.5e-3;

TransmissionLine
uniformLine(std::size_t n, double z0 = 50.0, double zs = 50.0,
            double zl = 50.0, double loss = 0.0)
{
    return TransmissionLine(std::vector<double>(n, z0), kSeg, kV, zs,
                            zl, loss, "u");
}

EdgeShape
probeEdge()
{
    return EdgeShape(0.8, 25e-12);
}

TEST(Lattice, MatchedUniformLineIsSilent)
{
    const auto line = uniformLine(200);
    LatticeSimulator sim(line);
    const auto trace = sim.probe(probeEdge());
    EXPECT_LT(trace.reflection.peakAbs(), 1e-12);
}

TEST(Lattice, OpenishLoadEchoArrivesAtRoundTrip)
{
    const auto line = uniformLine(200, 50.0, 50.0, 500.0);
    LatticeSimulator sim(line);
    const auto trace = sim.probe(probeEdge());
    const std::size_t peak = trace.reflection.peakIndex();
    const double t_peak = trace.reflection.timeAt(peak);
    const double expected = line.roundTripDelay();
    // Echo center lands at round trip + edge centering offset.
    EXPECT_NEAR(t_peak, expected + 1.5 * probeEdge().duration(),
                2.0 * probeEdge().duration());
    // High-impedance load reflects with positive polarity.
    EXPECT_GT(trace.reflection[peak], 0.0);
}

TEST(Lattice, LowImpedanceLoadEchoNegative)
{
    const auto line = uniformLine(200, 50.0, 50.0, 5.0);
    LatticeSimulator sim(line);
    const auto trace = sim.probe(probeEdge());
    EXPECT_LT(trace.reflection[trace.reflection.peakIndex()], 0.0);
}

TEST(Lattice, EchoAmplitudeMatchesReflectionCoefficient)
{
    const double zl = 75.0;
    const auto line = uniformLine(300, 50.0, 50.0, zl);
    LatticeSimulator sim(line);
    const auto trace = sim.probe(probeEdge());
    const double rho = (zl - 50.0) / (zl + 50.0);
    // Incident amplitude: 0.8 V through the 50/50 divider = 0.4 V.
    const double expected = 0.4 * rho;
    EXPECT_NEAR(trace.reflection.peakAbs(), std::fabs(expected),
                std::fabs(expected) * 0.02);
}

TEST(Lattice, LoadVoltageStepsToDividerValue)
{
    // Matched line, resistive load: after settling, the load sees the
    // source voltage divided by Zs + Zl.
    const double zl = 50.0;
    const auto line = uniformLine(100, 50.0, 50.0, zl);
    LatticeSimulator sim(line);
    const auto trace = sim.probe(probeEdge());
    const double settled = trace.loadVoltage[trace.loadVoltage.size() - 1];
    EXPECT_NEAR(settled, 0.4, 0.01);  // 0.8 * 50/(50+50)
}

TEST(Lattice, EnergyConservedOnLosslessLine)
{
    // Lossless, mismatched everything: energy injected equals energy
    // reflected back into the source plus energy delivered to the
    // load (power = V^2 / Z per traveling wave).
    Rng rng(3);
    auto delta = correlatedGaussianProfile(300, 0.05, 8.0, rng);
    std::vector<double> z(300);
    for (std::size_t i = 0; i < z.size(); ++i)
        z[i] = 50.0 * (1.0 + delta[i]);
    TransmissionLine line(z, kSeg, kV, 50.0, 65.0, 0.0, "e");
    LatticeSimulator sim(line);
    // Long capture so everything settles.
    const auto trace = sim.probe(probeEdge(),
                                 6.0 * line.roundTripDelay());

    // The incident wave carries V^2/Z0 per unit time; the reflected
    // wave V^2/Z0; the load wave V^2/Zl. For a *step* probe the tail
    // is DC, so compare instantaneous power balance after settling:
    // P_in - P_refl = P_load.
    const std::size_t i_end = trace.incident.size() - 1;
    const double v_inc = trace.incident[i_end];
    const double v_ref = trace.reflection[i_end];
    const double v_load = trace.loadVoltage[i_end];
    const double p_in = v_inc * v_inc / line.impedanceAt(0);
    const double p_ref = v_ref * v_ref / line.impedanceAt(0);
    const double p_load = v_load * v_load / line.loadImpedance();
    // Steady state: net forward power equals delivered power. The
    // cross term between incident and reflected DC components makes
    // the exact balance (V_inc^2 - V_ref^2)/Z0 for superposed waves.
    EXPECT_NEAR(p_in - p_ref, p_load, 0.05 * p_load);
}

TEST(Lattice, LossReducesEchoAmplitude)
{
    const auto lossless = uniformLine(300, 50.0, 50.0, 100.0, 0.0);
    const auto lossy = uniformLine(300, 50.0, 50.0, 100.0, 3.0);
    LatticeSimulator s1(lossless), s2(lossy);
    const double a1 = s1.probe(probeEdge()).reflection.peakAbs();
    const double a2 = s2.probe(probeEdge()).reflection.peakAbs();
    EXPECT_LT(a2, a1);
    // Two-way attenuation over 0.15 m at 3 Np/m: exp(-0.9).
    EXPECT_NEAR(a2 / a1, std::exp(-2.0 * 3.0 * 0.15), 0.02);
}

TEST(IdealProfile, MatchesLineGeometry)
{
    const auto line = uniformLine(100, 50.0, 50.0, 75.0);
    const auto prof = idealReflectionProfile(line);
    // Only the load echo: at index 2n.
    const std::size_t peak = prof.peakIndex();
    EXPECT_EQ(peak, 200u);
    EXPECT_NEAR(prof[peak], 0.2, 1e-12);
}

TEST(BornVsLattice, AgreeOnWeakInhomogeneity)
{
    Rng rng(5);
    auto delta = correlatedGaussianProfile(400, 0.05, 8.0, rng);
    std::vector<double> z(400);
    for (std::size_t i = 0; i < z.size(); ++i)
        z[i] = 50.0 * (1.0 + delta[i]);
    TransmissionLine line(z, kSeg, kV, 50.0, 50.5, 0.2, "bl");

    LatticeSimulator lat(line);
    BornTdrModel born(line);
    const auto exact = lat.probe(probeEdge());
    const auto approx = born.probe(probeEdge());

    // Compare on the common span: correlation > 0.99 and RMS error
    // below 5 % of the signal RMS (multiple reflections are second
    // order in rho ~ 2.5e-2).
    const std::size_t n = std::min(exact.reflection.size(),
                                   approx.size());
    double dot = 0.0, ee = 0.0, aa = 0.0, err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double e = exact.reflection[i];
        const double a = approx.valueAt(exact.reflection.timeAt(i));
        dot += e * a;
        ee += e * e;
        aa += a * a;
        err += (e - a) * (e - a);
    }
    const double corr = dot / std::sqrt(ee * aa);
    EXPECT_GT(corr, 0.99);
    EXPECT_LT(std::sqrt(err / ee), 0.1);
}

TEST(BornVsLattice, TimingOfLoadEchoIdentical)
{
    const auto line = uniformLine(250, 50.0, 50.0, 80.0);
    LatticeSimulator lat(line);
    BornTdrModel born(line);
    const auto exact = lat.probe(probeEdge());
    const auto approx = born.probe(probeEdge());
    const double t1 = exact.reflection.timeAt(exact.reflection.peakIndex());
    const double t2 = approx.timeAt(approx.peakIndex());
    EXPECT_NEAR(t1, t2, 3.0 * probeEdge().duration());
}

TEST(Lattice, TimeStepIsSegmentTransit)
{
    const auto line = uniformLine(10);
    LatticeSimulator sim(line);
    EXPECT_DOUBLE_EQ(sim.timeStep(), kSeg / kV);
}

} // namespace
} // namespace divot
