/**
 * @file
 * Tests for the PDM triangle source and the Vernier reference-level
 * schedule (Fig. 3).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "analog/triangle.hh"

namespace divot {
namespace {

TEST(TriangleWave, PeriodicAndBounded)
{
    TriangleWave tri(2e-3, 1e6, 0.0);
    const double period = 1e-6;
    for (double t = 0.0; t < 3e-6; t += 7e-9) {
        const double v = tri.valueAt(t);
        EXPECT_LE(std::fabs(v), 2e-3 + 1e-12);
        EXPECT_NEAR(tri.valueAt(t + period), v, 1e-9);
    }
}

TEST(TriangleWave, IdealShapeKeyPoints)
{
    TriangleWave tri(1.0, 1.0, 0.0);
    EXPECT_NEAR(tri.valueAt(0.0), -1.0, 1e-12);   // trough at phase 0
    EXPECT_NEAR(tri.valueAt(0.25), 0.0, 1e-12);   // midpoint rising
    EXPECT_NEAR(tri.valueAt(0.5), 1.0, 1e-12);    // crest
    EXPECT_NEAR(tri.valueAt(0.75), 0.0, 1e-12);   // midpoint falling
}

TEST(TriangleWave, CenterOffset)
{
    TriangleWave tri(1e-3, 1e6, 5e-3);
    double lo = 1e9, hi = -1e9;
    for (double t = 0.0; t < 1e-6; t += 1e-9) {
        lo = std::min(lo, tri.valueAt(t));
        hi = std::max(hi, tri.valueAt(t));
    }
    EXPECT_NEAR(lo, 4e-3, 1e-5);
    EXPECT_NEAR(hi, 6e-3, 1e-5);
}

TEST(TriangleWave, RcShapingKeepsSpanAndMonotonicity)
{
    TriangleWave tri(1.0, 1.0, 0.0, 0.3);
    // Quasi-triangle still spans [-1, 1]...
    EXPECT_NEAR(tri.valueAt(0.0), -1.0, 1e-9);
    EXPECT_NEAR(tri.valueAt(0.5), 1.0, 1e-9);
    // ...and stays monotone on each half period.
    double prev = tri.valueAt(0.0);
    for (double u = 0.01; u <= 0.5; u += 0.01) {
        const double v = tri.valueAt(u);
        EXPECT_GE(v, prev - 1e-12);
        prev = v;
    }
}

TEST(TriangleWave, SampledPeriodCoversOnePeriod)
{
    TriangleWave tri(1.0, 1e6);
    const Waveform w = tri.sampledPeriod(1e-8);
    EXPECT_EQ(w.size(), 100u);
    EXPECT_NEAR(w[0], -1.0, 1e-9);
}

TEST(TriangleWave, Validation)
{
    EXPECT_DEATH(TriangleWave(-1.0, 1.0), "amplitude");
    EXPECT_DEATH(TriangleWave(1.0, 0.0), "frequency");
    EXPECT_DEATH(TriangleWave(1.0, 1.0, 0.0, 5.0), "rc_shaping");
}

TEST(VernierLevels, PaperExampleFiveLevels)
{
    // Fig. 3: 5 f_m = 6 f_s => five distinct reference voltages. (At
    // t0 exactly on a triangle vertex the symmetric phases collide,
    // so probe at a generic waveform offset as the figure does.)
    TriangleWave tri(1.0, 6.0);  // f_m = 6 with f_s = 5
    const auto levels = vernierReferenceLevels(tri, 5, 6, 0.013);
    ASSERT_EQ(levels.size(), 5u);
    std::set<long> distinct;
    for (double v : levels)
        distinct.insert(std::lround(v * 1e9));
    EXPECT_EQ(distinct.size(), 5u);
}

TEST(VernierLevels, LevelsRepeatAfterPeriodP)
{
    TriangleWave tri(1.0, 12.0);
    const auto a = vernierReferenceLevels(tri, 11, 12, 0.1);
    // Level r equals tri at r*T_s + t0; r = p wraps to r = 0.
    const double t_s = (1.0 / 12.0) * 12.0 / 11.0;
    EXPECT_NEAR(tri.valueAt(11.0 * t_s + 0.1), a[0], 1e-9);
}

TEST(VernierLevels, SpreadCoversTriangleSpan)
{
    TriangleWave tri(1.0, 6.0);
    const auto levels = vernierReferenceLevels(tri, 5, 6, 0.0);
    const auto [lo, hi] = std::minmax_element(levels.begin(),
                                              levels.end());
    // Five phases of a triangle cover most of its swing.
    EXPECT_LT(*lo, -0.5);
    EXPECT_GT(*hi, 0.5);
}

TEST(VernierLevels, NonCoprimeRejected)
{
    TriangleWave tri(1.0, 6.0);
    EXPECT_DEATH(vernierReferenceLevels(tri, 4, 6, 0.0), "coprime");
    EXPECT_DEATH(vernierReferenceLevels(tri, 0, 6, 0.0), "positive");
}

/** Any coprime (p, q) yields exactly p distinct levels. */
class VernierSweep
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(VernierSweep, DistinctLevelCountEqualsP)
{
    const auto [p, q] = GetParam();
    TriangleWave tri(1.0, static_cast<double>(q));
    const auto levels = vernierReferenceLevels(tri, p, q, 0.037);
    std::set<long> distinct;
    for (double v : levels)
        distinct.insert(std::lround(v * 1e9));
    EXPECT_EQ(distinct.size(), p);
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, VernierSweep,
    ::testing::Values(std::make_pair(3u, 4u), std::make_pair(5u, 6u),
                      std::make_pair(7u, 8u), std::make_pair(11u, 12u),
                      std::make_pair(5u, 7u), std::make_pair(9u, 11u)));

} // namespace
} // namespace divot
