/**
 * @file
 * Property tests over generated pipeline configurations (see
 * property_harness.hh): for every case the telemetry accounting must
 * balance, the strobe-engine eligibility accounting must match the
 * configuration, fault-free runs must pass every health screen, and
 * the deterministic telemetry export must be byte-identical at any
 * thread count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "property_harness.hh"
#include "telemetry/telemetry.hh"

namespace divot {
namespace {

using property::PropertyCase;

TEST(PropertyPipeline, GeneratedCasesHoldAllInvariants)
{
    const std::size_t cases = property::caseCount();
    ASSERT_GE(cases, 1u);
    for (std::size_t i = 0; i < cases; ++i) {
        SCOPED_TRACE("property case " + std::to_string(i));
        const PropertyCase pc = property::generateCase(i);
        ChannelScheduler fleet = property::runCase(pc, 1);
        const Telemetry &telemetry = fleet.telemetry();
        const Registry &reg = telemetry.registry();

        // Span balance: every opened span closed (RAII guarantees it
        // even for abandoned scopes).
        EXPECT_EQ(telemetry.tracer().opened(),
                  telemetry.tracer().closed());

        // Fleet verdict balance: one trusted-or-untrusted verdict per
        // completed tick.
        EXPECT_EQ(reg.counterValue("fleet.verdicts.trusted") +
                      reg.counterValue("fleet.verdicts.untrusted"),
                  reg.counterValue("fleet.ticks"));
        EXPECT_EQ(reg.counterValue("fleet.ticks"), pc.ticks);

        for (std::size_t c = 0; c < pc.channels; ++c) {
            const std::string wire = "w" + std::to_string(c);
            SCOPED_TRACE("channel " + wire);
            const std::string itdr = "itdr." + wire;
            const std::string auth = "auth." + wire;

            // Cache balance: every lookup is a hit or a miss.
            EXPECT_EQ(reg.counterValue(itdr + ".cache.lookups"),
                      reg.counterValue(itdr + ".cache.hits") +
                          reg.counterValue(itdr + ".cache.misses"));

            // Verdict balance: every monitoring round authenticated
            // or rejected, never both, never neither.
            EXPECT_EQ(reg.counterValue(auth + ".rounds"),
                      reg.counterValue(auth + ".verdicts.authenticated") +
                          reg.counterValue(auth + ".verdicts.rejected"));

            // Engine accounting matches the configured strobe model.
            const uint64_t measurements =
                reg.counterValue(itdr + ".measurements");
            const uint64_t analytic =
                reg.counterValue(itdr + ".engine.analytic");
            const uint64_t fallbacks =
                reg.counterValue(itdr + ".engine.fallbacks");
            EXPECT_GT(measurements, 0u);
            if (pc.channel.itdr.strobeModel == StrobeModel::Binomial) {
                if (pc.binomialEligible) {
                    EXPECT_EQ(analytic, measurements);
                    EXPECT_EQ(fallbacks, 0u);
                } else {
                    EXPECT_EQ(analytic, 0u);
                    EXPECT_EQ(fallbacks, measurements);
                }
            } else {
                EXPECT_EQ(analytic, 0u);
                EXPECT_EQ(fallbacks, 0u);
            }

            // Fault-free runs never trip a health screen or climb the
            // resilience ladder.
            if (pc.faults.empty()) {
                EXPECT_EQ(reg.counterValue(itdr + ".health.failed"), 0u);
                EXPECT_EQ(reg.counterValue(auth + ".unhealthy_rounds"),
                          0u);
                EXPECT_EQ(reg.counterValue(auth + ".retries"), 0u);
            }
        }
    }
}

TEST(PropertyPipeline, ExportByteIdenticalAcrossThreadCounts)
{
    // The determinism half of the contract: the same generated case
    // run serial and with a contended pool must serialize the exact
    // same deterministic snapshot. A shorter sweep than the invariant
    // test (every case runs twice here).
    const std::size_t cases = std::min<std::size_t>(
        property::caseCount(), 16);
    for (std::size_t i = 0; i < cases; ++i) {
        SCOPED_TRACE("property case " + std::to_string(i));
        const PropertyCase pc = property::generateCase(i);
        ChannelScheduler serial = property::runCase(pc, 1);
        ChannelScheduler pooled = property::runCase(pc, 3);
        EXPECT_EQ(serial.telemetry().exportJson(),
                  pooled.telemetry().exportJson());
    }
}

TEST(PropertyPipeline, ExportByteIdenticalBatchedVsPerChannel)
{
    // Cross-channel kernel batching must be observationally invisible:
    // under the forced scalar kernel (so every dispatch target
    // resolves identically regardless of host CPU) a batched fleet
    // must export byte-for-byte the telemetry of a per-channel one —
    // same measurements, same stable counters, same verdicts.
    const char *prev = std::getenv("DIVOT_SIMD");
    const std::string saved = prev != nullptr ? prev : "";
    setenv("DIVOT_SIMD", "scalar", 1);
    const std::size_t cases = std::min<std::size_t>(
        property::caseCount(), 12);
    for (std::size_t i = 0; i < cases; ++i) {
        SCOPED_TRACE("property case " + std::to_string(i));
        const PropertyCase pc = property::generateCase(i);
        ChannelScheduler per_channel = property::runCase(pc, 1, 0);
        ChannelScheduler batched = property::runCase(pc, 2, 2);
        EXPECT_EQ(per_channel.telemetry().exportJson(),
                  batched.telemetry().exportJson());
    }
    if (prev != nullptr)
        setenv("DIVOT_SIMD", saved.c_str(), 1);
    else
        unsetenv("DIVOT_SIMD");
}

TEST(PropertyPipeline, CaseGenerationIsAPureFunctionOfIndex)
{
    for (std::size_t i = 0; i < 8; ++i) {
        const PropertyCase a = property::generateCase(i);
        const PropertyCase b = property::generateCase(i);
        EXPECT_EQ(a.seed, b.seed);
        EXPECT_EQ(a.channels, b.channels);
        EXPECT_EQ(a.ticks, b.ticks);
        EXPECT_EQ(a.channel.itdr.trialsPerPhase,
                  b.channel.itdr.trialsPerPhase);
        EXPECT_EQ(a.faults.specs().size(), b.faults.specs().size());
    }
}

} // namespace
} // namespace divot
