/**
 * @file
 * Tests for tamper transforms: each attack perturbs exactly the
 * region its physics says it should, with the right polarity.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "txline/tamper.hh"

namespace divot {
namespace {

TransmissionLine
plainLine(std::size_t n = 200)
{
    return TransmissionLine(std::vector<double>(n, 50.0), 0.5e-3,
                            1.5e8, 50.0, 50.0, 0.0, "p");
}

TEST(LoadModification, ChangesOnlyTermination)
{
    const auto line = plainLine();
    LoadModification attack(80.0);
    const auto hit = attack.apply(line);
    EXPECT_DOUBLE_EQ(hit.loadImpedance(), 80.0);
    for (std::size_t i = 0; i < line.segments(); ++i)
        EXPECT_DOUBLE_EQ(hit.impedanceAt(i), line.impedanceAt(i));
    EXPECT_DOUBLE_EQ(attack.nominalPosition(), 1.0);
    EXPECT_NE(hit.name().find("load_mod"), std::string::npos);
}

TEST(LoadModification, RejectsBadImpedance)
{
    EXPECT_DEATH(LoadModification(0.0), "positive");
}

TEST(WireTap, LowersImpedanceLocally)
{
    const auto line = plainLine();
    WireTap tap(0.5, 50.0);
    const auto hit = tap.apply(line);
    const std::size_t mid = line.segments() / 2;
    // Parallel 50||50 = 25, minus solder damage.
    EXPECT_LT(hit.impedanceAt(mid), 26.0);
    // Far from the tap nothing changes.
    EXPECT_DOUBLE_EQ(hit.impedanceAt(0), 50.0);
    EXPECT_DOUBLE_EQ(hit.impedanceAt(line.segments() - 1), 50.0);
}

TEST(WireTap, RemovalLeavesScar)
{
    const auto line = plainLine();
    WireTap tap(0.5, 50.0, 2e-3, 0.05);
    const auto removed = tap.applyRemoved(line);
    const std::size_t mid = line.segments() / 2;
    EXPECT_NEAR(removed.impedanceAt(mid), 50.0 * 0.95, 1e-9);
    EXPECT_DOUBLE_EQ(removed.impedanceAt(0), 50.0);
}

TEST(WireTap, ScarSmallerThanTap)
{
    const auto line = plainLine();
    WireTap tap(0.3, 50.0);
    const std::size_t idx =
        static_cast<std::size_t>(0.3 * line.segments());
    const double with_tap = tap.apply(line).impedanceAt(idx);
    const double with_scar = tap.applyRemoved(line).impedanceAt(idx);
    EXPECT_LT(with_tap, with_scar);
}

TEST(WireTap, PositionValidation)
{
    EXPECT_DEATH(WireTap(-0.1, 50.0), "position");
    EXPECT_DEATH(WireTap(1.5, 50.0), "position");
    EXPECT_DEATH(WireTap(0.5, -1.0), "positive");
}

TEST(MagneticProbe, RaisesImpedanceLocallySmall)
{
    const auto line = plainLine();
    MagneticProbe probe(0.5, 0.03, 5e-3);
    const auto hit = probe.apply(line);
    const std::size_t mid = line.segments() / 2;
    // Mutual inductance raises Z, but only by ~coupling/2.
    EXPECT_GT(hit.impedanceAt(mid), 50.0);
    EXPECT_LT(hit.impedanceAt(mid), 50.0 * 1.02);
    EXPECT_DOUBLE_EQ(hit.impedanceAt(0), 50.0);
}

TEST(MagneticProbe, TaperFallsOffAtEdges)
{
    const auto line = plainLine(1000);
    MagneticProbe probe(0.5, 0.03, 10e-3);
    const auto hit = probe.apply(line);
    const std::size_t mid = 500;
    const std::size_t edge = 500 - 9;  // near footprint edge
    EXPECT_GT(hit.impedanceAt(mid) - 50.0,
              hit.impedanceAt(edge) - 50.0);
}

TEST(MagneticProbe, CouplingValidation)
{
    EXPECT_DEATH(MagneticProbe(0.5, 0.0), "coupling");
    EXPECT_DEATH(MagneticProbe(0.5, 1.5), "coupling");
}

TEST(TrojanChipInsertion, SetsInterposerImpedance)
{
    const auto line = plainLine();
    TrojanChipInsertion trojan(0.25, 65.0, 4e-3);
    const auto hit = trojan.apply(line);
    const std::size_t idx =
        static_cast<std::size_t>(0.25 * line.segments());
    EXPECT_DOUBLE_EQ(hit.impedanceAt(idx), 65.0);
    EXPECT_DOUBLE_EQ(hit.impedanceAt(0), 50.0);
}

TEST(TamperDescriptions, AreInformative)
{
    EXPECT_NE(LoadModification(80.0).describe().find("load"),
              std::string::npos);
    EXPECT_NE(WireTap(0.5, 50.0).describe().find("tap"),
              std::string::npos);
    EXPECT_NE(MagneticProbe(0.5).describe().find("probe"),
              std::string::npos);
    EXPECT_NE(TrojanChipInsertion(0.5).describe().find("Trojan"),
              std::string::npos);
}

TEST(Tampers, OriginalLineNeverMutated)
{
    const auto line = plainLine();
    WireTap(0.5, 50.0).apply(line);
    MagneticProbe(0.5).apply(line);
    LoadModification(80.0).apply(line);
    for (std::size_t i = 0; i < line.segments(); ++i)
        EXPECT_DOUBLE_EQ(line.impedanceAt(i), 50.0);
    EXPECT_DOUBLE_EQ(line.loadImpedance(), 50.0);
}

/** Probe position sweep: perturbation lands where commanded. */
class ProbePositionSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ProbePositionSweep, PerturbationAtCommandedPosition)
{
    const double pos = GetParam();
    const auto line = plainLine(1000);
    MagneticProbe probe(pos, 0.03, 5e-3);
    const auto hit = probe.apply(line);
    // Find the perturbed segment with the largest delta.
    std::size_t best = 0;
    double best_d = 0.0;
    for (std::size_t i = 0; i < hit.segments(); ++i) {
        const double d = std::fabs(hit.impedanceAt(i) - 50.0);
        if (d > best_d) {
            best_d = d;
            best = i;
        }
    }
    const double found_pos =
        static_cast<double>(best) / static_cast<double>(hit.segments());
    EXPECT_NEAR(found_pos, pos, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProbePositionSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

} // namespace
} // namespace divot
