/**
 * @file
 * Tests for runtime trigger generation (Section II-E).
 */

#include <gtest/gtest.h>

#include "itdr/trigger.hh"

namespace divot {
namespace {

TEST(Trigger, ClockLaneFiresEveryCycle)
{
    TriggerGenerator gen(TriggerMode::ClockLane, Rng(1));
    for (uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(gen.nextTriggerCycle(), i);
    EXPECT_EQ(gen.cyclesElapsed(), 100u);
    EXPECT_EQ(gen.triggersProduced(), 100u);
    EXPECT_DOUBLE_EQ(gen.expectedTriggerRate(), 1.0);
}

TEST(Trigger, DataLaneCyclesStrictlyIncrease)
{
    TriggerGenerator gen(TriggerMode::DataLane, Rng(2));
    uint64_t prev = gen.nextTriggerCycle();
    for (int i = 0; i < 1000; ++i) {
        const uint64_t c = gen.nextTriggerCycle();
        EXPECT_GT(c, prev);
        prev = c;
    }
}

TEST(Trigger, DataLaneRateNearQuarter)
{
    // P[bit=1 then bit=0] = 1/4 for i.i.d. fair bits.
    TriggerGenerator gen(TriggerMode::DataLane, Rng(3));
    const int triggers = 20000;
    for (int i = 0; i < triggers; ++i)
        gen.nextTriggerCycle();
    const double rate = static_cast<double>(gen.triggersProduced()) /
        static_cast<double>(gen.cyclesElapsed());
    EXPECT_NEAR(rate, 0.25, 0.01);
    EXPECT_DOUBLE_EQ(gen.expectedTriggerRate(), 0.25);
}

TEST(Trigger, DataLaneDeterministicBySeed)
{
    TriggerGenerator a(TriggerMode::DataLane, Rng(7));
    TriggerGenerator b(TriggerMode::DataLane, Rng(7));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextTriggerCycle(), b.nextTriggerCycle());
}

TEST(Trigger, CountsStartAtZero)
{
    TriggerGenerator gen(TriggerMode::DataLane, Rng(9));
    EXPECT_EQ(gen.cyclesElapsed(), 0u);
    EXPECT_EQ(gen.triggersProduced(), 0u);
}

} // namespace
} // namespace divot
