/**
 * @file
 * Tests for the reaction policy mapping verdicts to actions per bus
 * role (Section III "Reaction to counter attacks").
 */

#include <gtest/gtest.h>

#include "auth/reaction.hh"

namespace divot {
namespace {

AuthVerdict
okVerdict()
{
    AuthVerdict v;
    v.authenticated = true;
    v.similarity = 0.9;
    v.round = 1;
    return v;
}

AuthVerdict
mismatchVerdict()
{
    AuthVerdict v;
    v.authenticated = false;
    v.similarity = 0.1;
    v.round = 2;
    return v;
}

AuthVerdict
tamperVerdict()
{
    AuthVerdict v;
    v.authenticated = true;
    v.tamperAlarm = true;
    v.peakError = 3e-6;
    v.round = 3;
    return v;
}

TEST(ReactionPolicy, CleanVerdictProceeds)
{
    ReactionPolicy policy(BusRole::Cpu);
    EXPECT_EQ(policy.decide(okVerdict()), ReactionAction::Proceed);
    EXPECT_EQ(policy.deniedCount(), 0u);
    EXPECT_TRUE(policy.events().empty());
}

TEST(ReactionPolicy, CpuMismatchStallsAndRetries)
{
    ReactionPolicy policy(BusRole::Cpu);
    EXPECT_EQ(policy.decide(mismatchVerdict()),
              ReactionAction::StallRetry);
    EXPECT_EQ(policy.deniedCount(), 1u);
    ASSERT_EQ(policy.events().size(), 1u);
    EXPECT_EQ(policy.events()[0].round, 2u);
}

TEST(ReactionPolicy, MemoryMismatchBlocksAccess)
{
    ReactionPolicy policy(BusRole::Memory);
    EXPECT_EQ(policy.decide(mismatchVerdict()),
              ReactionAction::BlockAccess);
}

TEST(ReactionPolicy, TamperRaisesAlarm)
{
    ReactionPolicy policy(BusRole::Cpu);
    EXPECT_EQ(policy.decide(tamperVerdict()),
              ReactionAction::RaiseAlarm);
    EXPECT_EQ(policy.alarmCount(), 1u);
}

TEST(ReactionPolicy, TamperZeroizesWhenArmed)
{
    ReactionPolicy policy(BusRole::Cpu, /*zeroize_on_tamper=*/true);
    EXPECT_EQ(policy.decide(tamperVerdict()),
              ReactionAction::ZeroizeKeys);
}

TEST(ReactionPolicy, TamperTakesPriorityOverMismatch)
{
    ReactionPolicy policy(BusRole::Memory);
    AuthVerdict both = tamperVerdict();
    both.authenticated = false;
    const ReactionAction a = policy.decide(both);
    EXPECT_TRUE(a == ReactionAction::RaiseAlarm);
    EXPECT_EQ(policy.alarmCount(), 1u);
}

TEST(ReactionPolicy, EventLogAccumulates)
{
    ReactionPolicy policy(BusRole::Memory);
    policy.decide(okVerdict());
    policy.decide(mismatchVerdict());
    policy.decide(tamperVerdict());
    EXPECT_EQ(policy.events().size(), 2u);
    EXPECT_EQ(policy.deniedCount(), 2u);
    EXPECT_EQ(policy.alarmCount(), 1u);
}

TEST(ReactionPolicy, ActionNamesPrintable)
{
    EXPECT_STREQ(reactionActionName(ReactionAction::Proceed),
                 "proceed");
    EXPECT_STREQ(reactionActionName(ReactionAction::StallRetry),
                 "stall-retry");
    EXPECT_STREQ(reactionActionName(ReactionAction::BlockAccess),
                 "block-access");
    EXPECT_STREQ(reactionActionName(ReactionAction::RaiseAlarm),
                 "raise-alarm");
    EXPECT_STREQ(reactionActionName(ReactionAction::ZeroizeKeys),
                 "zeroize-keys");
}

} // namespace
} // namespace divot
