/**
 * @file
 * Tests for the SIMD strobe kernels (DESIGN.md §13): the determinism
 * contract (scalar == pre-kernel engine, binomial bit-identity across
 * targets, target-invariant draw schedule), the AVX2 Phi error bound,
 * the DIVOT_SIMD dispatch rules, and the SoA sweep's equivalence to
 * the per-bin analytic loop.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "analog/comparator.hh"
#include "itdr/itdr.hh"
#include "itdr/kernels/kernels.hh"
#include "itdr/kernels/soa.hh"
#include "txline/manufacturing.hh"
#include "txline/txline.hh"
#include "util/math.hh"

namespace divot {
namespace {

/** Every kernel table compiled in AND runnable on this machine. */
std::vector<const StrobeKernels *>
runnableKernelSets()
{
    std::vector<const StrobeKernels *> sets = {scalarStrobeKernels()};
    if (simdTargetSupported(SimdTarget::Avx2))
        sets.push_back(avx2StrobeKernels());
    if (simdTargetSupported(SimdTarget::Neon))
        sets.push_back(neonStrobeKernels());
    return sets;
}

/** A bins x levels reference grid plus per-bin signals spanning
 *  saturated, interior, and boundary lanes. */
struct GridFixture
{
    static constexpr std::size_t bins = 24;
    static constexpr std::size_t levels = 17;
    std::vector<double> vSig, ref;

    GridFixture()
    {
        Rng r(123);
        vSig.resize(bins);
        ref.resize(bins * levels);
        for (std::size_t i = 0; i < bins; ++i) {
            // Mix deep-saturated bins with interior ones.
            vSig[i] = (i % 3 == 0 ? 20e-3 : 0.0) +
                (static_cast<double>(i) - 12.0) * 0.4e-3;
            for (std::size_t j = 0; j < levels; ++j) {
                ref[i * levels + j] =
                    -8e-3 + 1e-3 * static_cast<double>(j) +
                    r.uniform(-0.1e-3, 0.1e-3);
            }
        }
    }
};

TEST(KernelGrid, ScalarMatchesNormalCdfSaturated)
{
    GridFixture f;
    const double inv_sigma = 1.0 / 0.5e-3;
    const double offset = 0.2e-3;
    std::vector<double> p(f.bins * f.levels);
    scalarStrobeKernels()->apcProbabilityGrid(
        f.vSig.data(), offset, inv_sigma, f.ref.data(), p.data(),
        f.bins, f.levels);
    for (std::size_t i = 0; i < f.bins; ++i) {
        for (std::size_t j = 0; j < f.levels; ++j) {
            const double z = (f.vSig[i] + offset - f.ref[i * f.levels + j]) *
                inv_sigma;
            EXPECT_EQ(p[i * f.levels + j], normalCdfSaturated(z));
        }
    }
}

TEST(KernelGrid, NoiselessStepOnEveryTarget)
{
    GridFixture f;
    for (const StrobeKernels *k : runnableKernelSets()) {
        std::vector<double> p(f.bins * f.levels, -1.0);
        k->apcProbabilityGrid(f.vSig.data(), 0.0, 0.0, f.ref.data(),
                              p.data(), f.bins, f.levels);
        for (std::size_t i = 0; i < f.bins; ++i) {
            for (std::size_t j = 0; j < f.levels; ++j) {
                const double dv =
                    f.vSig[i] - f.ref[i * f.levels + j];
                EXPECT_EQ(p[i * f.levels + j], dv > 0.0 ? 1.0 : 0.0)
                    << k->name;
            }
        }
    }
}

/** Vector Phi must stay within 5e-7 of scalar in the interior and be
 *  exactly 0.0 / 1.0 (scalar-equal) past +-8 sigma — exact saturation
 *  is what keeps the draw schedule target-invariant. */
TEST(KernelGrid, VectorPhiWithinBoundAndExactlySaturated)
{
    GridFixture f;
    const double inv_sigma = 1.0 / 0.5e-3;
    std::vector<double> ps(f.bins * f.levels), pv(f.bins * f.levels);
    scalarStrobeKernels()->apcProbabilityGrid(
        f.vSig.data(), 0.0, inv_sigma, f.ref.data(), ps.data(),
        f.bins, f.levels);
    for (const StrobeKernels *k : runnableKernelSets()) {
        if (k->target == SimdTarget::Scalar)
            continue;
        k->apcProbabilityGrid(f.vSig.data(), 0.0, inv_sigma,
                              f.ref.data(), pv.data(), f.bins,
                              f.levels);
        for (std::size_t l = 0; l < ps.size(); ++l) {
            const double z =
                (f.vSig[l / f.levels] - f.ref[l]) * inv_sigma;
            if (z >= 8.0 || z <= -8.0) {
                EXPECT_EQ(pv[l], ps[l])
                    << k->name << " saturated lane " << l;
            } else {
                EXPECT_NEAR(pv[l], ps[l], 5e-7)
                    << k->name << " interior lane " << l;
            }
        }
    }
}

/** The binomial kernel is bit-identical across every target, and
 *  leaves the Rng in the same state (same number of uniforms, in the
 *  same lane order). */
TEST(KernelBinomial, BitIdenticalAcrossTargets)
{
    GridFixture f;
    const double inv_sigma = 1.0 / 0.5e-3;
    std::vector<double> p(f.bins * f.levels);
    scalarStrobeKernels()->apcProbabilityGrid(
        f.vSig.data(), 0.0, inv_sigma, f.ref.data(), p.data(), f.bins,
        f.levels);

    Rng ref_rng(77);
    std::vector<unsigned> ref_k(p.size(), 0xdeadu);
    scalarStrobeKernels()->binomialLane(ref_rng, p.data(), 10,
                                        ref_k.data(), p.size());
    for (const StrobeKernels *k : runnableKernelSets()) {
        Rng rng(77);
        std::vector<unsigned> got(p.size(), 0xbeefu);
        k->binomialLane(rng, p.data(), 10, got.data(), p.size());
        EXPECT_EQ(got, ref_k) << k->name;
        // Post-call stream state must match exactly.
        for (int d = 0; d < 8; ++d)
            EXPECT_EQ(rng.next(), ref_rng.next()) << k->name;
        // re-sync ref_rng for the next target
        ref_rng = Rng(77);
        std::vector<unsigned> scratch(p.size());
        scalarStrobeKernels()->binomialLane(ref_rng, p.data(), 10,
                                            scratch.data(), p.size());
    }
}

TEST(KernelBinomial, MatchesSequentialRngBinomial)
{
    GridFixture f;
    const double inv_sigma = 1.0 / 0.5e-3;
    std::vector<double> p(f.bins * f.levels);
    scalarStrobeKernels()->apcProbabilityGrid(
        f.vSig.data(), 0.0, inv_sigma, f.ref.data(), p.data(), f.bins,
        f.levels);
    Rng a(9), b(9);
    std::vector<unsigned> got(p.size());
    scalarStrobeKernels()->binomialLane(a, p.data(), 10, got.data(),
                                        p.size());
    for (std::size_t l = 0; l < p.size(); ++l) {
        EXPECT_EQ(got[l],
                  static_cast<unsigned>(b.binomial(10, p[l])))
            << "lane " << l;
    }
    EXPECT_EQ(a.next(), b.next());
}

/** Degenerate lanes (p <= 0, p >= 1) must not consume draws on any
 *  target — the Rng::binomial contract, lane-wise. */
TEST(KernelBinomial, DegenerateLanesConsumeNoDraws)
{
    std::vector<double> p = {0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0,
                             0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0,
                             1.0};
    for (const StrobeKernels *k : runnableKernelSets()) {
        Rng rng(5);
        std::vector<unsigned> got(p.size(), 42u);
        k->binomialLane(rng, p.data(), 12, got.data(), p.size());
        for (std::size_t l = 0; l < p.size(); ++l)
            EXPECT_EQ(got[l], p[l] >= 1.0 ? 12u : 0u) << k->name;
        EXPECT_EQ(rng.next(), Rng(5).next())
            << k->name << " consumed a draw on degenerate input";
    }
}

TEST(KernelBinomial, LargeTrialsFallBackIdentically)
{
    // trials > binomialInversionCutoff: every target must defer to
    // the scalar per-lane path (normal-cutoff draws).
    std::vector<double> p = {0.3, 0.0, 0.9, 0.5, 1.0, 0.01, 0.72};
    Rng ref_rng(31);
    std::vector<unsigned> ref_k(p.size());
    scalarStrobeKernels()->binomialLane(ref_rng, p.data(), 1000,
                                        ref_k.data(), p.size());
    for (const StrobeKernels *k : runnableKernelSets()) {
        Rng rng(31);
        std::vector<unsigned> got(p.size());
        k->binomialLane(rng, p.data(), 1000, got.data(), p.size());
        EXPECT_EQ(got, ref_k) << k->name;
        EXPECT_EQ(rng.next(), ref_rng.next()) << k->name;
        ref_rng = Rng(31);
        std::vector<unsigned> scratch(p.size());
        scalarStrobeKernels()->binomialLane(ref_rng, p.data(), 1000,
                                            scratch.data(), p.size());
    }
}

TEST(KernelTile, PeriodicTilingExactOnEveryTarget)
{
    std::vector<double> period(17);
    for (std::size_t j = 0; j < period.size(); ++j)
        period[j] = std::sin(static_cast<double>(j));
    for (const StrobeKernels *k : runnableKernelSets()) {
        for (std::size_t n : {0ul, 5ul, 17ul, 170ul, 173ul}) {
            std::vector<double> out(n, -7.0);
            k->tilePeriodic(period.data(), period.size(), out.data(),
                            n);
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(out[i], period[i % period.size()])
                    << k->name << " n=" << n << " i=" << i;
        }
    }
}

/** The SoA sweep with the scalar kernel set performs exactly the
 *  libm calls and Rng draws of per-bin strobeAnalytic calls: same
 *  hits, same final comparator stream. */
TEST(KernelSoA, ScalarSweepMatchesPerBinAnalytic)
{
    GridFixture f;
    ComparatorParams params;
    params.noiseSigma = 0.5e-3;
    params.inputOffset = 0.1e-3;

    Comparator perBin(params, Rng(41));
    std::vector<unsigned> want(f.bins);
    for (std::size_t i = 0; i < f.bins; ++i) {
        want[i] = perBin.strobeAnalytic(
            f.vSig[i], f.ref.data() + i * f.levels, f.levels, 10);
    }

    Comparator sweep(params, Rng(41));
    StrobeSoA soa;
    soa.resize(f.bins, f.levels);
    for (std::size_t i = 0; i < f.bins; ++i)
        soa.vSig[i] = f.vSig[i];
    sweep.strobeAnalyticSoA(*scalarStrobeKernels(), f.ref.data(),
                            f.bins, f.levels, 10, soa);
    for (std::size_t i = 0; i < f.bins; ++i)
        EXPECT_EQ(soa.hits[i], want[i]) << "bin " << i;
    // Identical stream state afterwards: the next strobes agree.
    for (int s = 0; s < 32; ++s)
        EXPECT_EQ(sweep.strobe(0.0, 0.0), perBin.strobe(0.0, 0.0));
}

class DispatchEnv : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const char *prev = std::getenv("DIVOT_SIMD");
        if (prev != nullptr)
            saved_ = prev;
        hadEnv_ = prev != nullptr;
    }
    void TearDown() override
    {
        if (hadEnv_)
            setenv("DIVOT_SIMD", saved_.c_str(), 1);
        else
            unsetenv("DIVOT_SIMD");
    }

  private:
    std::string saved_;
    bool hadEnv_ = false;
};

TEST_F(DispatchEnv, EnvForcesScalarOverConfig)
{
    setenv("DIVOT_SIMD", "scalar", 1);
    EXPECT_EQ(resolveSimdTarget(SimdTarget::Auto), SimdTarget::Scalar);
    EXPECT_EQ(resolveSimdTarget(SimdTarget::Avx2), SimdTarget::Scalar);
    EXPECT_EQ(strobeKernels(SimdTarget::Auto).target,
              SimdTarget::Scalar);
}

TEST_F(DispatchEnv, AutoResolvesToASupportedTarget)
{
    unsetenv("DIVOT_SIMD");
    const SimdTarget t = resolveSimdTarget(SimdTarget::Auto);
    EXPECT_NE(t, SimdTarget::Auto);
    EXPECT_TRUE(simdTargetSupported(t)) << simdTargetName(t);
    EXPECT_EQ(strobeKernels(SimdTarget::Auto).target, t);
}

TEST_F(DispatchEnv, UnknownEnvValueFallsBackToRequested)
{
    setenv("DIVOT_SIMD", "sse9", 1);
    const SimdTarget t = resolveSimdTarget(SimdTarget::Scalar);
    EXPECT_EQ(t, SimdTarget::Scalar);
}

TEST_F(DispatchEnv, UnsupportedForcedTargetFallsBackToScalar)
{
    unsetenv("DIVOT_SIMD");
    // At most one of AVX2/NEON can be supported on one machine; the
    // other must fall back to scalar rather than crash.
    if (!simdTargetSupported(SimdTarget::Avx2)) {
        EXPECT_EQ(resolveSimdTarget(SimdTarget::Avx2),
                  SimdTarget::Scalar);
    }
    if (!simdTargetSupported(SimdTarget::Neon)) {
        EXPECT_EQ(resolveSimdTarget(SimdTarget::Neon),
                  SimdTarget::Scalar);
    }
}

/** Full-instrument determinism per dispatch target, plus arena
 *  sharing: a measure through a caller-attached arena must be
 *  byte-identical to one through the instrument's own scratch. */
class ItdrKernelHarness
{
  public:
    static TransmissionLine makeLine()
    {
        ProcessParams pp;
        ManufacturingProcess proc(pp, Rng(7));
        auto z = proc.drawImpedanceProfile(0.05, 0.5e-3);
        return TransmissionLine(std::move(z), 0.5e-3, pp.velocity,
                                50.0, 50.3, pp.lossNeperPerMeter,
                                "kernel-test");
    }

    static Waveform measureOnce(SimdTarget simd, StrobeSoA *arena)
    {
        ItdrConfig cfg;
        cfg.strobeModel = StrobeModel::Binomial;
        cfg.simd = simd;
        ITdr itdr(cfg, Rng(11));
        if (arena != nullptr)
            itdr.attachKernelArena(arena);
        TransmissionLine line = makeLine();
        return itdr.measure(line).iip;
    }
};

TEST_F(DispatchEnv, MeasureDeterministicPerTarget)
{
    unsetenv("DIVOT_SIMD");
    for (const StrobeKernels *k : runnableKernelSets()) {
        const Waveform a =
            ItdrKernelHarness::measureOnce(k->target, nullptr);
        const Waveform b =
            ItdrKernelHarness::measureOnce(k->target, nullptr);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_EQ(a[i], b[i]) << k->name << " bin " << i;
    }
}

TEST_F(DispatchEnv, SharedArenaMatchesOwnedScratch)
{
    unsetenv("DIVOT_SIMD");
    for (const StrobeKernels *k : runnableKernelSets()) {
        const Waveform own =
            ItdrKernelHarness::measureOnce(k->target, nullptr);
        StrobeSoA arena;
        const Waveform shared =
            ItdrKernelHarness::measureOnce(k->target, &arena);
        ASSERT_EQ(own.size(), shared.size());
        for (std::size_t i = 0; i < own.size(); ++i)
            EXPECT_EQ(own[i], shared[i]) << k->name << " bin " << i;
        // The arena was actually used (sized by the sweep).
        EXPECT_EQ(arena.vSig.size(), own.size()) << k->name;
    }
}

TEST_F(DispatchEnv, EnvForcedScalarMatchesConfigScalar)
{
    unsetenv("DIVOT_SIMD");
    const Waveform cfg_scalar =
        ItdrKernelHarness::measureOnce(SimdTarget::Scalar, nullptr);
    setenv("DIVOT_SIMD", "scalar", 1);
    const Waveform env_scalar =
        ItdrKernelHarness::measureOnce(SimdTarget::Auto, nullptr);
    ASSERT_EQ(cfg_scalar.size(), env_scalar.size());
    for (std::size_t i = 0; i < cfg_scalar.size(); ++i)
        EXPECT_EQ(cfg_scalar[i], env_scalar[i]) << "bin " << i;
}

} // namespace
} // namespace divot
