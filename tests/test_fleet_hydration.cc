/**
 * @file
 * Tests for the store-backed fleet: lazy hydration must be invisible
 * in every fused verdict, LRU eviction must hold the resident-byte
 * budget, unrecoverable records must demote their channel to
 * PendingReenroll (fencing the wire, not the fleet), and the idle
 * scrub hook must run on spare instrument slots.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fleet/channel_scheduler.hh"
#include "store/enrollment_db.hh"
#include "store/io.hh"

namespace divot {
namespace {

BusChannelConfig
quickChannel(std::size_t index)
{
    BusChannelConfig cfg;
    cfg.lineLength = 0.1; // keep tests fast
    cfg.enrollReps = 8;
    cfg.name = "wire" + std::to_string(index);
    return cfg;
}

std::string
freshDbDir(const char *name)
{
    const std::string dir = std::string(::testing::TempDir()) + name;
    store::ensureDir(dir);
    for (unsigned s = 0; s < 8; ++s) {
        const std::string shard =
            dir + "/shard-" + std::to_string(s) + ".bin";
        store::removeFile(shard);
        store::removeFile(shard + ".tmp");
    }
    store::removeFile(dir + "/journal.wal");
    return dir;
}

store::EnrollmentDbConfig
dbConfig(const std::string &dir)
{
    store::EnrollmentDbConfig cfg;
    cfg.directory = dir;
    cfg.shards = 4;
    cfg.overlayFlushRecords = 2;
    return cfg;
}

ChannelScheduler
makeFleet(std::size_t channels, std::size_t instruments,
          uint64_t seed = 42)
{
    FleetConfig cfg;
    cfg.instruments = instruments;
    cfg.policy = SchedulerPolicy::RoundRobin;
    cfg.threads = 1;
    ChannelScheduler fleet(cfg, Rng(seed));
    for (std::size_t c = 0; c < channels; ++c)
        fleet.addChannel(quickChannel(c));
    fleet.calibrateAll();
    return fleet;
}

TEST(FleetHydration, HydrationIsVerdictInvisible)
{
    // Reference: storeless fleet.
    ChannelScheduler plain = makeFleet(3, 2);
    // Candidate: same seed, backed by a store with a budget tiny
    // enough that every unpinned enrollment is evicted each tick and
    // must rehydrate before its next probe.
    ChannelScheduler backed = makeFleet(3, 2);
    const std::string dir = freshDbDir("hydr_invisible");
    store::EnrollmentDb db(dbConfig(dir));
    ASSERT_TRUE(db.open());
    backed.attachStore(&db, 1);

    for (int t = 0; t < 8; ++t) {
        const FleetRound a = plain.tick();
        const FleetRound b = backed.tick();
        ASSERT_EQ(a.probes.size(), b.probes.size()) << "tick " << t;
        for (std::size_t p = 0; p < a.probes.size(); ++p) {
            EXPECT_EQ(a.probes[p].channel, b.probes[p].channel);
            EXPECT_EQ(a.probes[p].verdict.similarity,
                      b.probes[p].verdict.similarity)
                << "tick " << t << " probe " << p;
        }
        EXPECT_EQ(a.fused.fusedSimilarity, b.fused.fusedSimilarity)
            << "tick " << t;
        EXPECT_EQ(a.fused.busTrusted, b.fused.busTrusted);
        EXPECT_EQ(b.fused.pendingReenrollWires, 0u);
    }
    // The tiny budget really did force eviction/rehydration churn.
    EXPECT_GT(backed.telemetry().registry().counterValue(
                  "store.evictions"), 0u);
    EXPECT_GT(backed.telemetry().registry().counterValue(
                  "store.hydrates"), 0u);
}

TEST(FleetHydration, ResidentBudgetHolds)
{
    ChannelScheduler fleet = makeFleet(4, 1);
    const std::string dir = freshDbDir("hydr_budget");
    store::EnrollmentDb db(dbConfig(dir));
    ASSERT_TRUE(db.open());

    // Budget: one enrollment plus headroom — the single probed
    // channel per tick is the pinned working set.
    const std::size_t oneChannel = fleet.channel(0).enrollmentBytes();
    ASSERT_GT(oneChannel, 0u);
    const std::size_t budget = oneChannel + oneChannel / 2;
    fleet.attachStore(&db, budget);

    for (int t = 0; t < 10; ++t) {
        fleet.tick();
        EXPECT_LE(fleet.residentEnrollmentBytes(), budget)
            << "tick " << t;
    }
}

TEST(FleetHydration, LostRecordDemotesToPendingReenroll)
{
    ChannelScheduler fleet = makeFleet(2, 1);
    const std::string dir = freshDbDir("hydr_demote");
    store::EnrollmentDb db(dbConfig(dir));
    ASSERT_TRUE(db.open());
    fleet.attachStore(&db, 1); // evict everything unpinned

    // Tick 0 probes wire0 and evicts wire1's enrollment.
    fleet.tick();
    ASSERT_FALSE(fleet.channel(1).enrollmentResident());

    // The durable copy vanishes (models a record damaged in every
    // bank; erase gives the same Missing/unrecoverable hydration
    // outcome deterministically).
    ASSERT_TRUE(db.erase("wire1"));

    // Tick 1 selects wire1, fails hydration, and fences it — the
    // fleet keeps running on the surviving wire.
    const FleetRound round = fleet.tick();
    EXPECT_EQ(fleet.channel(1).state(), AuthState::PendingReenroll);
    EXPECT_EQ(round.fused.pendingReenrollWires, 1u);
    for (const ChannelProbe &probe : round.probes)
        EXPECT_NE(probe.channel, 1u);

    // Later rounds never select a fenced channel...
    for (int t = 0; t < 4; ++t) {
        const FleetRound r = fleet.tick();
        for (const ChannelProbe &probe : r.probes)
            EXPECT_NE(probe.channel, 1u);
        EXPECT_TRUE(r.fused.busAuthenticated);
    }
    EXPECT_GT(fleet.telemetry().registry().counterValue(
                  "store.pending_reenroll"), 0u);

    // ...until the operator re-calibrates it.
    ASSERT_TRUE(fleet.reenrollChannel(1));
    EXPECT_NE(fleet.channel(1).state(), AuthState::PendingReenroll);
    store::EnrollmentRecord rec;
    EXPECT_EQ(db.get("wire1", rec), store::DbGetStatus::Ok);
    bool probed1 = false;
    for (int t = 0; t < 4; ++t) {
        const FleetRound r = fleet.tick();
        EXPECT_EQ(r.fused.pendingReenrollWires, 0u);
        for (const ChannelProbe &probe : r.probes)
            probed1 = probed1 || probe.channel == 1u;
    }
    EXPECT_TRUE(probed1);
}

TEST(FleetHydration, IdleSlotsScrubTheStore)
{
    ChannelScheduler fleet = makeFleet(2, 2);
    const std::string dir = freshDbDir("hydr_scrub");
    store::EnrollmentDb db(dbConfig(dir));
    ASSERT_TRUE(db.open());
    fleet.attachStore(&db, 0);

    // Fence one wire: every later tick has a spare instrument slot,
    // which the scheduler spends scrubbing the next shard.
    ASSERT_TRUE(db.erase("wire0"));
    fleet.channel(0).releaseEnrollment();
    for (int t = 0; t < 6; ++t)
        fleet.tick();
    EXPECT_EQ(fleet.channel(0).state(), AuthState::PendingReenroll);
    EXPECT_GT(fleet.telemetry().registry().counterValue(
                  "store.scrub.idle_ticks"), 0u);
}

TEST(FleetHydration, StoreCountersOnlyRegisterWithStore)
{
    ChannelScheduler plain = makeFleet(2, 1);
    plain.run(2);
    for (const auto &c : plain.telemetry().registry().counters())
        EXPECT_TRUE(c.name.rfind("store.", 0) != 0)
            << "storeless fleet registered " << c.name;

    ChannelScheduler backed = makeFleet(2, 1);
    const std::string dir = freshDbDir("hydr_counters");
    store::EnrollmentDb db(dbConfig(dir));
    ASSERT_TRUE(db.open());
    db.attachTelemetry(&backed.telemetry());
    backed.attachStore(&db, 1);
    backed.run(3);
    std::vector<std::string> names;
    for (const auto &c : backed.telemetry().registry().counters())
        if (c.name.rfind("store.", 0) == 0)
            names.push_back(c.name);
    EXPECT_TRUE(std::find(names.begin(), names.end(),
                          "store.hydrates") != names.end());
    EXPECT_TRUE(std::find(names.begin(), names.end(),
                          "store.puts") != names.end());
}

} // namespace
} // namespace divot
