/**
 * @file
 * Tests for ROC / EER analysis — the scoring machinery of Fig. 7(b).
 */

#include <gtest/gtest.h>

#include "util/rng.hh"
#include "util/roc.hh"

namespace divot {
namespace {

TEST(Roc, PerfectlySeparatedPopulations)
{
    std::vector<double> genuine{0.9, 0.95, 0.99, 0.92};
    std::vector<double> impostor{0.1, 0.2, 0.05, 0.15};
    const auto roc = analyzeRoc(genuine, impostor);
    EXPECT_NEAR(roc.eer, 0.0, 1e-12);
    EXPECT_NEAR(roc.auc, 1.0, 1e-12);
    // Any threshold between the populations separates them.
    EXPECT_GT(roc.eerThreshold, 0.2);
    EXPECT_LT(roc.eerThreshold, 0.95);
}

TEST(Roc, IdenticalPopulationsGiveHalfEer)
{
    Rng rng(3);
    std::vector<double> a, b;
    for (int i = 0; i < 5000; ++i) {
        a.push_back(rng.uniform());
        b.push_back(rng.uniform());
    }
    const auto roc = analyzeRoc(a, b);
    EXPECT_NEAR(roc.eer, 0.5, 0.02);
    EXPECT_NEAR(roc.auc, 0.5, 0.02);
}

TEST(Roc, KnownOverlapMatchesGaussianTheory)
{
    // Two unit-variance Gaussians 2 apart: EER = Phi(-1) ~ 0.1587.
    Rng rng(7);
    std::vector<double> genuine, impostor;
    for (int i = 0; i < 40000; ++i) {
        genuine.push_back(rng.gaussian(1.0, 1.0));
        impostor.push_back(rng.gaussian(-1.0, 1.0));
    }
    const auto roc = analyzeRoc(genuine, impostor);
    EXPECT_NEAR(roc.eer, 0.1587, 0.01);
}

TEST(Roc, CurveMonotoneInBothRates)
{
    Rng rng(11);
    std::vector<double> genuine, impostor;
    for (int i = 0; i < 2000; ++i) {
        genuine.push_back(rng.gaussian(0.5, 0.3));
        impostor.push_back(rng.gaussian(-0.5, 0.3));
    }
    const auto roc = analyzeRoc(genuine, impostor);
    double fpr = -1.0, tpr = -1.0;
    for (const auto &pt : roc.curve) {
        EXPECT_GE(pt.falsePositiveRate, fpr);
        EXPECT_GE(pt.truePositiveRate, tpr);
        fpr = pt.falsePositiveRate;
        tpr = pt.truePositiveRate;
    }
}

TEST(Roc, ThresholdForFprIsConservative)
{
    std::vector<double> genuine{0.8, 0.9, 0.95};
    std::vector<double> impostor{0.1, 0.3, 0.5, 0.7};
    const auto roc = analyzeRoc(genuine, impostor);
    const double th = roc.thresholdForFpr(0.0);
    // Accepting at th must accept no impostor.
    for (double s : impostor)
        EXPECT_LT(s, th);
}

TEST(Roc, FprAtThresholdConsistent)
{
    std::vector<double> genuine{0.8, 0.9};
    std::vector<double> impostor{0.2, 0.4, 0.6};
    const auto roc = analyzeRoc(genuine, impostor);
    // At threshold 0.5, impostors 0.6 are accepted: FPR = 1/3.
    EXPECT_NEAR(roc.fprAt(0.5), 1.0 / 3.0, 1e-12);
}

/** EER stays within [0, 0.5] + noise for arbitrary separations. */
class EerRange : public ::testing::TestWithParam<double>
{
};

TEST_P(EerRange, WithinBounds)
{
    const double separation = GetParam();
    Rng rng(13);
    std::vector<double> genuine, impostor;
    for (int i = 0; i < 3000; ++i) {
        genuine.push_back(rng.gaussian(separation / 2.0, 1.0));
        impostor.push_back(rng.gaussian(-separation / 2.0, 1.0));
    }
    const auto roc = analyzeRoc(genuine, impostor);
    EXPECT_GE(roc.eer, 0.0);
    EXPECT_LE(roc.eer, 0.55);
    EXPECT_GE(roc.auc, 0.45);
    EXPECT_LE(roc.auc, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EerRange,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0, 4.0, 8.0));

TEST(Decidability, GrowsWithSeparation)
{
    Rng rng(17);
    auto make = [&](double mu) {
        std::vector<double> v;
        for (int i = 0; i < 5000; ++i)
            v.push_back(rng.gaussian(mu, 1.0));
        return v;
    };
    const auto far_g = make(3.0), far_i = make(-3.0);
    const auto near_g = make(0.5), near_i = make(-0.5);
    EXPECT_GT(decidabilityIndex(far_g, far_i),
              decidabilityIndex(near_g, near_i));
    EXPECT_NEAR(decidabilityIndex(far_g, far_i), 6.0, 0.3);
}

TEST(RocDeath, EmptyPopulationPanics)
{
    std::vector<double> some{0.5};
    std::vector<double> empty;
    EXPECT_DEATH(analyzeRoc(empty, some), "empty population");
    EXPECT_DEATH(analyzeRoc(some, empty), "empty population");
}

} // namespace
} // namespace divot
