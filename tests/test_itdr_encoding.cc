/**
 * @file
 * Tests for the 8b/10b line code: code validity, DC balance, bounded
 * run length, roundtrip decoding, and the encoded-stream trigger.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "itdr/encoding.hh"
#include "itdr/trigger.hh"

namespace divot {
namespace {

TEST(Encoder8b10b, EverySymbolHasLegalWeight)
{
    // A valid 10-bit data code carries 4, 5, or 6 ones.
    Encoder8b10b enc;
    for (int b = 0; b < 256; ++b) {
        const uint16_t sym = enc.encode(static_cast<uint8_t>(b));
        const unsigned ones = Encoder8b10b::onesCount(sym);
        EXPECT_GE(ones, 4u) << "byte " << b;
        EXPECT_LE(ones, 6u) << "byte " << b;
    }
}

TEST(Encoder8b10b, RunningDisparityBounded)
{
    Encoder8b10b enc;
    Rng rng(1);
    for (int i = 0; i < 20000; ++i) {
        enc.encode(static_cast<uint8_t>(rng.uniformInt(256)));
        const int rd = enc.runningDisparity();
        EXPECT_TRUE(rd == -1 || rd == 1);
    }
}

TEST(Encoder8b10b, StreamIsDcBalanced)
{
    Encoder8b10b enc;
    Rng rng(2);
    std::vector<uint8_t> payload(20000);
    for (auto &b : payload)
        b = static_cast<uint8_t>(rng.uniformInt(256));
    const auto bits = enc.encodeStream(payload);
    long balance = 0;
    for (bool bit : bits)
        balance += bit ? 1 : -1;
    // Running disparity bounds the imbalance to a few bits out of
    // 200000.
    EXPECT_LE(std::abs(balance), 4);
}

TEST(Encoder8b10b, RunLengthAtMostFive)
{
    Encoder8b10b enc;
    Rng rng(3);
    std::vector<uint8_t> payload(20000);
    for (auto &b : payload)
        b = static_cast<uint8_t>(rng.uniformInt(256));
    const auto bits = enc.encodeStream(payload);
    EXPECT_LE(Encoder8b10b::longestRun(bits), 5u);
}

TEST(Encoder8b10b, RoundtripAllBytesBothDisparities)
{
    // Encode every byte starting from both disparities; decode must
    // recover the byte.
    for (int start_rd = 0; start_rd < 2; ++start_rd) {
        for (int b = 0; b < 256; ++b) {
            Encoder8b10b enc;
            if (start_rd == 1) {
                // Flip RD to +1 by encoding a disparity-changing byte.
                enc.encode(0x00);
                if (enc.runningDisparity() != 1)
                    enc.encode(0x00);
            }
            const uint16_t sym = enc.encode(static_cast<uint8_t>(b));
            uint8_t decoded = 0;
            ASSERT_TRUE(enc.decode(sym, decoded))
                << "byte " << b << " rd " << start_rd;
            EXPECT_EQ(decoded, b);
        }
    }
}

TEST(Encoder8b10b, InvalidSymbolRejected)
{
    Encoder8b10b enc;
    uint8_t out = 0;
    EXPECT_FALSE(enc.decode(0b0000000000, out));
    EXPECT_FALSE(enc.decode(0b1111111111, out));
}

TEST(Encoder8b10b, CodesUniquePerDisparityColumn)
{
    // No two payload values may share a code within one column.
    std::set<uint8_t> seen;
    Encoder8b10b enc;
    for (int b = 0; b < 32; ++b) {
        enc.reset();
        const uint16_t sym = enc.encode(static_cast<uint8_t>(b));
        const uint8_t code6 = static_cast<uint8_t>((sym >> 4) & 0x3f);
        EXPECT_TRUE(seen.insert(code6).second) << "byte " << b;
    }
}

TEST(Encoder8b10b, ResetRestoresStartupDisparity)
{
    Encoder8b10b enc;
    enc.encode(0x00);  // disparity-changing
    enc.reset();
    EXPECT_EQ(enc.runningDisparity(), -1);
}

TEST(EncodedTrigger, RateNearThreeTenths)
{
    TriggerGenerator gen(TriggerMode::Encoded8b10b, Rng(5));
    for (int i = 0; i < 30000; ++i)
        gen.nextTriggerCycle();
    const double rate = static_cast<double>(gen.triggersProduced()) /
        static_cast<double>(gen.cyclesElapsed());
    EXPECT_NEAR(rate, gen.expectedTriggerRate(), 0.05);
}

TEST(EncodedTrigger, BoundedTriggerGap)
{
    // 8b/10b run length <= 5 bounds the gap between falling edges;
    // random raw data has unbounded gaps. Check the encoded stream's
    // worst gap over many triggers stays small.
    TriggerGenerator gen(TriggerMode::Encoded8b10b, Rng(7));
    uint64_t prev = gen.nextTriggerCycle();
    uint64_t worst = 0;
    for (int i = 0; i < 30000; ++i) {
        const uint64_t c = gen.nextTriggerCycle();
        worst = std::max(worst, c - prev);
        prev = c;
    }
    EXPECT_LE(worst, 11u);  // <= one symbol of 1s + runs around it
}

TEST(EncodedTrigger, Deterministic)
{
    TriggerGenerator a(TriggerMode::Encoded8b10b, Rng(9));
    TriggerGenerator b(TriggerMode::Encoded8b10b, Rng(9));
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.nextTriggerCycle(), b.nextTriggerCycle());
}

} // namespace
} // namespace divot
