/**
 * @file
 * Tests for measurement-latency accounting and its inverse (sizing K
 * to a latency target — the paper's 50 us envelope).
 */

#include <gtest/gtest.h>

#include "itdr/budget.hh"
#include "itdr/itdr.hh"
#include "txline/manufacturing.hh"

namespace divot {
namespace {

TEST(Budget, MatchesActualMeasurementCost)
{
    ItdrConfig cfg;
    cfg.trialsPerPhase = 22;
    const double rt = 2.0 * 0.1 / 1.5e8;

    ProcessParams params;
    ManufacturingProcess fab(params, Rng(1));
    auto z = fab.drawImpedanceProfile(0.1, 0.5e-3);
    TransmissionLine line(std::move(z), 0.5e-3, 1.5e8, 50.0, 50.0,
                          0.5, "b");

    const MeasurementBudget b = predictBudget(cfg, rt);
    ITdr itdr(cfg, Rng(2));
    const IipMeasurement m = itdr.measure(line);
    EXPECT_EQ(b.bins, itdr.phaseBins());
    EXPECT_EQ(b.trialsPerBin, itdr.trialsPerPhase());
    EXPECT_EQ(b.triggers, m.triggers);
    EXPECT_EQ(b.expectedCycles, m.busCycles);
    EXPECT_NEAR(b.expectedDuration, m.duration, 1e-12);
}

TEST(Budget, TrialsRoundUpToLevels)
{
    ItdrConfig cfg;
    cfg.pdm.p = 11;
    cfg.pdm.q = 12;
    cfg.trialsPerPhase = 23;  // p=11 -> 33
    const MeasurementBudget b = predictBudget(cfg, 3e-9);
    EXPECT_EQ(b.trialsPerBin, 33u);
}

TEST(Budget, DataLaneQuadruplesExpectedCycles)
{
    ItdrConfig clock_cfg, data_cfg;
    data_cfg.triggerMode = TriggerMode::DataLane;
    const auto a = predictBudget(clock_cfg, 3e-9);
    const auto b = predictBudget(data_cfg, 3e-9);
    EXPECT_NEAR(static_cast<double>(b.expectedCycles),
                4.0 * static_cast<double>(a.expectedCycles),
                static_cast<double>(a.expectedCycles) * 0.01);
}

TEST(Budget, PaperLatencyEnvelope)
{
    // With the paper's 25 cm line there must exist a K that fits a
    // complete measurement within 50 us at 156.25 MHz.
    ItdrConfig cfg;
    const double rt = 2.0 * 0.25 / 1.5e8;
    const unsigned k = maxTrialsWithinLatency(cfg, rt, 50e-6);
    EXPECT_GT(k, 0u);
    cfg.trialsPerPhase = k;
    const MeasurementBudget b = predictBudget(cfg, rt);
    EXPECT_LE(b.expectedDuration, 50e-6);
}

TEST(Budget, MaxTrialsIsTight)
{
    ItdrConfig cfg;
    const double rt = 3e-9;
    const double target = 100e-6;
    const unsigned k = maxTrialsWithinLatency(cfg, rt, target);
    ASSERT_GT(k, 0u);
    // k fits; k + levels does not.
    cfg.trialsPerPhase = k;
    EXPECT_LE(predictBudget(cfg, rt).expectedDuration, target);
    cfg.trialsPerPhase = k + cfg.pdm.p;
    EXPECT_GT(predictBudget(cfg, rt).expectedDuration, target);
}

TEST(Budget, ImpossibleTargetReturnsZero)
{
    ItdrConfig cfg;
    EXPECT_EQ(maxTrialsWithinLatency(cfg, 3e-9, 1e-9), 0u);
}

TEST(Budget, BadLatencyRejected)
{
    ItdrConfig cfg;
    EXPECT_DEATH(maxTrialsWithinLatency(cfg, 3e-9, 0.0), "latency");
}

TEST(Budget, ExplicitWindowOverridesRoundTrip)
{
    ItdrConfig cfg;
    cfg.captureWindow = 1e-9;
    const auto a = predictBudget(cfg, 100e-9);
    cfg.captureWindow = 2e-9;
    const auto b = predictBudget(cfg, 100e-9);
    EXPECT_NEAR(static_cast<double>(b.bins),
                2.0 * static_cast<double>(a.bins), 2.0);
}

} // namespace
} // namespace divot
