/**
 * @file
 * End-to-end integration tests of the Section III protected memory
 * system: traffic flows while monitoring runs concurrently, a cold
 * boot swap is detected and blocked within the monitoring window, and
 * the victim's data never reaches the attacker.
 */

#include <gtest/gtest.h>

#include "memsys/system.hh"

namespace divot {
namespace {

MemorySystemConfig
smallConfig()
{
    MemorySystemConfig cfg;
    cfg.busLength = 0.05;          // short bus => fast rounds
    cfg.enrollReps = 8;
    cfg.requestsPerKcycle = 20.0;
    cfg.workload = WorkloadKind::Sequential;  // row-buffer friendly
    return cfg;
}

TEST(Integration, BenignRunCompletesTraffic)
{
    ProtectedMemorySystem sys(smallConfig(), Rng(1));
    sys.run(300000);
    const MemorySystemReport rep = sys.report();
    EXPECT_GT(rep.injected, 1000u);
    EXPECT_GT(rep.completed, rep.injected * 9 / 10);
    EXPECT_GT(rep.monitoringRounds, 2u);
    EXPECT_TRUE(rep.detections.empty());
    EXPECT_EQ(rep.gateRejections, 0u);
    EXPECT_EQ(rep.controller.stalledCycles, 0u);
    EXPECT_GT(rep.controller.rowHitRate(), 0.3);
}

TEST(Integration, ColdBootSwapDetectedAndStalled)
{
    ProtectedMemorySystem sys(smallConfig(), Rng(2));
    sys.scheduleColdBootSwap(100000);
    sys.run(2000000);
    const MemorySystemReport rep = sys.report();
    ASSERT_FALSE(rep.detections.empty());
    const DetectionRecord &rec = rep.detections.front();
    EXPECT_EQ(rec.attackCycle, 100000u);
    // The paper claims detection within the memory-operation time
    // frame; our monitoring rounds are ~hundreds of microseconds, so
    // the swap must be flagged within a few milliseconds.
    EXPECT_LT(rec.latencySeconds, 25e-3);
    // The controller reacted by stalling.
    EXPECT_GT(rep.controller.stalledCycles, 0u);
}

TEST(Integration, ProbeAttachTriggersAlarmAndGate)
{
    ProtectedMemorySystem sys(smallConfig(), Rng(3));
    sys.scheduleProbeAttach(100000, 0.5);
    sys.run(3000000);
    const MemorySystemReport rep = sys.report();
    ASSERT_FALSE(rep.detections.empty());
    EXPECT_GT(rep.controller.stalledCycles, 0u);
}

TEST(Integration, VictimDataNotServedAfterSwap)
{
    // Write a secret before the swap; after the swap the gate blocks
    // column accesses, so the secret is never delivered again.
    ProtectedMemorySystem sys(smallConfig(), Rng(4));
    sys.sdram().poke(0xdead, 0x5ec7e7);
    sys.scheduleColdBootSwap(50000);
    sys.run(2000000);
    const MemorySystemReport rep = sys.report();
    ASSERT_FALSE(rep.detections.empty());
    // After detection, the device stayed blocked; no new completions
    // once the controller stalls (allow in-flight drain).
    EXPECT_TRUE(sys.sdram().accessBlocked() ||
                rep.controller.stalledCycles > 0);
}

TEST(Integration, MonitoringIsConcurrentWithTraffic)
{
    // DIVOT costs zero data-bus cycles: a benign run with monitoring
    // completes essentially the same traffic as the workload injects.
    ProtectedMemorySystem sys(smallConfig(), Rng(5));
    sys.run(400000);
    const MemorySystemReport rep = sys.report();
    EXPECT_GT(rep.monitoringRounds, 3u);
    // No stall cycles and no gate rejections in a benign run — the
    // entire monitoring activity rode on existing clock edges.
    EXPECT_EQ(rep.controller.stalledCycles, 0u);
    EXPECT_EQ(rep.gateRejections, 0u);
}

TEST(Integration, ReportCountsConsistent)
{
    ProtectedMemorySystem sys(smallConfig(), Rng(6));
    sys.run(200000);
    const MemorySystemReport rep = sys.report();
    EXPECT_EQ(rep.cyclesRun, 200000u);
    EXPECT_LE(rep.completed, rep.injected);
    EXPECT_EQ(rep.controller.reads + rep.controller.writes,
              rep.completed);
}

} // namespace
} // namespace divot
