/**
 * @file
 * Integration tests of the calibration-persistence workflow: enroll
 * on the manufacturing line, ship the EPROM image, adopt it in the
 * field, and keep authenticating — plus physics cross-checks that tie
 * the layers together (reversed-view reciprocity, EMI injection at
 * the instrument level).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "auth/authenticator.hh"
#include "auth/enrollment.hh"
#include "signal/noise.hh"
#include "txline/manufacturing.hh"

namespace divot {
namespace {

TransmissionLine
fabLine(uint64_t seed)
{
    ProcessParams params;
    ManufacturingProcess fab(params, Rng(seed));
    auto z = fab.drawImpedanceProfile(0.12, 0.5e-3);
    return TransmissionLine(std::move(z), 0.5e-3, params.velocity,
                            50.0, 50.25, params.lossNeperPerMeter,
                            "eprom-line");
}

TEST(EpromWorkflow, EnrollPersistAdoptAuthenticate)
{
    const std::string path =
        std::string(::testing::TempDir()) + "eprom_flow.bin";
    const auto line = fabLine(1);

    // Manufacturing line: enroll and burn the EPROM.
    Waveform nominal;
    {
        Authenticator factory(AuthConfig{}, ItdrConfig{}, Rng(2),
                              "dimm0.clk");
        factory.enroll(line, 8);
        nominal = factory.nominal();
        EnrollmentStore store;
        store.enroll("dimm0.clk", factory.enrolled());
        ASSERT_TRUE(store.saveToFile(path));
    }

    // Field: a fresh controller loads the image and monitors.
    EnrollmentStore field;
    ASSERT_TRUE(field.loadFromFile(path));
    const auto fp = field.lookup("dimm0.clk");
    ASSERT_TRUE(fp.has_value());

    Authenticator deployed(AuthConfig{}, ItdrConfig{}, Rng(3),
                           "dimm0.clk");
    deployed.adoptEnrollment(*fp, nominal);
    AuthVerdict v{};
    for (int i = 0; i < 6; ++i)
        v = deployed.checkRound(line);
    EXPECT_TRUE(v.authenticated);
    EXPECT_FALSE(v.tamperAlarm);

    // A different module fails against the shipped fingerprint.
    const auto foreign = fabLine(77);
    for (int i = 0; i < 20; ++i)
        v = deployed.checkRound(foreign);
    EXPECT_FALSE(v.authenticated && !v.tamperAlarm);
    std::remove(path.c_str());
}

TEST(Physics, ReversedProbeSeesMirroredFeatures)
{
    // A strong bump at 30 % of the line must appear at ~70 % when the
    // line is probed from the other end — the reciprocity the two-way
    // protocol relies on.
    std::vector<double> z(300, 50.0);
    for (std::size_t i = 88; i < 92; ++i)
        z[i] = 56.0;  // bump at 30 %
    TransmissionLine line(z, 0.5e-3, 1.5e8, 50.0, 50.0, 0.0, "mir");
    const TransmissionLine rev = reversedView(line);

    ItdrConfig cfg;
    ITdr a(cfg, Rng(5)), b(cfg, Rng(6));
    const Waveform fwd = a.idealIip(line);
    const Waveform bwd = b.idealIip(rev);
    const double t_fwd = fwd.timeAt(fwd.peakIndex());
    const double t_bwd = bwd.timeAt(bwd.peakIndex());
    const double rt = line.roundTripDelay();
    // Peak round-trip times complement each other (up to the probe
    // edge centering offset common to both).
    const double offset = 1.5 * a.edge().duration();
    EXPECT_NEAR((t_fwd - offset) + (t_bwd - offset), rt, 0.1 * rt);
}

TEST(Physics, EmiInjectionRaisesMeasurementNoiseOnly)
{
    const auto line = fabLine(9);
    ItdrConfig cfg;
    ITdr itdr(cfg, Rng(10));
    const Waveform ideal = itdr.idealIip(line);

    auto rms_err = [&](NoiseSource *emi) {
        const IipMeasurement m = itdr.measure(line, emi);
        double err = 0.0;
        for (std::size_t i = 0; i < ideal.size(); ++i)
            err += (m.iip[i] - ideal[i]) * (m.iip[i] - ideal[i]);
        return std::sqrt(err / static_cast<double>(ideal.size()));
    };

    const double clean = rms_err(nullptr);
    SinusoidalInterference weak(0.5e-3, 312.7e6, 0.3);
    const double with_emi = rms_err(&weak);
    // Asynchronous EMI behaves like extra comparator noise: the error
    // grows by roughly sqrt(1 + (A_emi/sqrt(2))^2/sigma^2) — a small
    // factor — instead of biasing the trace by the full interferer
    // amplitude.
    EXPECT_GT(with_emi, clean * 0.8);
    EXPECT_LT(with_emi, 2.5 * clean);
}

TEST(Physics, StrongSynchronousInterferenceWouldNotAverageOut)
{
    // Counter-check: an interferer locked to the sampling clock is
    // NOT rejected — it biases the reconstruction. This is why the
    // paper stresses the *asynchronous* nature of ambient EMI.
    const auto line = fabLine(11);
    ItdrConfig cfg;
    ITdr itdr(cfg, Rng(12));
    const Waveform ideal = itdr.idealIip(line);
    // Tone at exactly f_s: every strobe at a fixed offset sees the
    // same interferer phase.
    SinusoidalInterference locked(0.5e-3, 156.25e6, 1.0);
    const IipMeasurement m = itdr.measure(line, &locked);
    double bias = 0.0;
    for (std::size_t i = 0; i < ideal.size(); ++i)
        bias += std::fabs(m.iip[i] - ideal[i]);
    bias /= static_cast<double>(ideal.size());
    // Mean absolute deviation clearly above the clean noise floor.
    EXPECT_GT(bias, 0.2e-3);
}

} // namespace
} // namespace divot
